// Package testutil holds test harnesses shared across the repository's
// packages. Its centerpiece is the finite-difference gradient checker that
// every gradient test (elementwise ops, models, control flow) verifies
// against, replacing the ad-hoc central-difference loops the early tests
// each carried.
package testutil

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/tensor"
)

// GradCheck verifies an analytic gradient against central differences:
// for each element i of the point, it evaluates the scalar objective at
// point ± step·eᵢ and compares (f₊ - f₋) / 2·step with the analytic
// gradient's element i under a per-input relative tolerance
// |analytic - numeric| ≤ tol · (1 + |numeric|).
//
// Step and tolerance default per dtype: float64 uses a small step and a
// tight tolerance; float32 needs a much larger step (the function is
// evaluated in ~7 significant digits) and a correspondingly looser bound.
type GradCheck struct {
	// Eval returns the scalar objective at the given point (typically the
	// summed fetch of the loss endpoint).
	Eval func(point *tensor.Tensor) (float64, error)
	// Grad returns the analytic gradient at the given point, shaped like
	// the point.
	Grad func(point *tensor.Tensor) (*tensor.Tensor, error)
	// Step overrides the central-difference half-step (0 = dtype default).
	Step float64
	// Tol overrides the relative tolerance (0 = dtype default).
	Tol float64
}

// defaults returns the dtype-appropriate step and tolerance.
func defaults(dt tensor.DType) (step, tol float64, err error) {
	switch dt {
	case tensor.Float64:
		return 1e-6, 1e-4, nil
	case tensor.Float32:
		return 1e-2, 5e-2, nil
	default:
		return 0, 0, fmt.Errorf("testutil: gradient check needs a float point, got %v", dt)
	}
}

// Run checks the gradient at the given point, reporting each mismatching
// element through t.Errorf with the given name as context. The point is
// restored element by element, so callers may reuse it.
func (c GradCheck) Run(t testing.TB, name string, point *tensor.Tensor) {
	t.Helper()
	step, tol, err := defaults(point.DType())
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if c.Step > 0 {
		step = c.Step
	}
	if c.Tol > 0 {
		tol = c.Tol
	}
	analytic, err := c.Grad(point)
	if err != nil {
		t.Fatalf("%s: analytic gradient: %v", name, err)
	}
	if analytic == nil {
		t.Fatalf("%s: analytic gradient is nil", name)
	}
	if analytic.NumElements() != point.NumElements() {
		t.Fatalf("%s: analytic gradient has %d elements for a point of %d",
			name, analytic.NumElements(), point.NumElements())
	}
	for i := 0; i < point.NumElements(); i++ {
		orig := point.FloatAt(i)
		point.SetFloat(i, orig+step)
		up, err := c.Eval(point)
		if err != nil {
			t.Fatalf("%s: eval at +step: %v", name, err)
		}
		point.SetFloat(i, orig-step)
		dn, err := c.Eval(point)
		if err != nil {
			t.Fatalf("%s: eval at -step: %v", name, err)
		}
		point.SetFloat(i, orig)
		numeric := (up - dn) / (2 * step)
		got := analytic.FloatAt(i)
		if math.Abs(got-numeric) > tol*(1+math.Abs(numeric)) {
			t.Errorf("%s: grad[%d] = %g, numeric %g", name, i, got, numeric)
		}
	}
}
