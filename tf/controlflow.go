package tf

import (
	"fmt"

	"repro/internal/build"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// Cond builds a non-strict conditional (§3.4, Figure 2): each input is
// routed through a Switch so that only the taken branch's operations
// execute; the untaken branch receives dead values that propagate until the
// final Merge. Both branch functions receive the switched inputs and must
// derive their results from them (operations not depending on a switched
// input execute unconditionally, as in the reference system). The branches
// must return the same number of outputs with matching types.
//
// Each Merge records the predicate that gated it (graph.CondPredAttr), which
// is what lets the gradient builder rewrite a conditional's backward pass as
// the dual conditional: the gradient of a Merge is a Switch on the same
// predicate and vice versa (§4.1).
func (gr *Graph) Cond(pred Output, inputs []Output, thenFn, elseFn func(ins []Output) []Output) []Output {
	if len(inputs) == 0 {
		gr.b.Fail(fmt.Errorf("tf: Cond needs at least one input to gate the branches"))
		return nil
	}
	thenIns := make([]Output, len(inputs))
	elseIns := make([]Output, len(inputs))
	for i, in := range inputs {
		sw := gr.b.Node("Switch", []graph.Endpoint{in.ep, pred.ep}, "cond/switch", nil)
		if sw == nil {
			return nil
		}
		elseIns[i] = gr.wrap(sw.Out(0)) // false side
		thenIns[i] = gr.wrap(sw.Out(1)) // true side
	}
	thenOuts := thenFn(thenIns)
	elseOuts := elseFn(elseIns)
	if len(thenOuts) != len(elseOuts) {
		gr.b.Fail(fmt.Errorf("tf: Cond branches returned %d and %d outputs", len(thenOuts), len(elseOuts)))
		return nil
	}
	merged := make([]Output, len(thenOuts))
	for i := range thenOuts {
		m := gr.b.Node("Merge", []graph.Endpoint{elseOuts[i].ep, thenOuts[i].ep}, "cond/merge", map[string]any{
			graph.CondPredAttr:      pred.ep.Node.Name(),
			graph.CondPredIndexAttr: pred.ep.Index,
		})
		if m == nil {
			return nil
		}
		merged[i] = gr.wrap(m.Out(0))
	}
	return merged
}

var whileCounter int

// While builds an iteration (§3.4) with the timely-dataflow-inspired frame
// structure: Enter pushes loop variables into a new frame, Merge joins the
// initial value with the NextIteration back edge, LoopCond gates a Switch
// per variable, Exit delivers the final values, and NextIteration feeds the
// body results back. Values captured from outside the loop (including
// constants created inside the closures) are routed through constant Enter
// nodes automatically (build.FrameScope).
//
// invariants optionally pre-captures loop-invariant values, passed to the
// closures as invs; automatic capture makes this a convenience rather than
// a requirement.
//
// Alongside the user's loop variables, While threads a hidden int32
// trip-count counter (0, 1, 2, …) through the frame, its Enter and Exit
// marked with graph.LoopCounterAttr. The gradient builder (§4.1) runs the
// backward loop for exactly the counter's final value, popping stack-saved
// intermediates in reverse.
func (gr *Graph) While(loopVars []Output, invariants []Output,
	cond func(vars, invs []Output) Output,
	body func(vars, invs []Output) []Output) []Output {

	if len(loopVars) == 0 {
		gr.b.Fail(fmt.Errorf("tf: While needs at least one loop variable"))
		return nil
	}
	whileCounter++
	frame := fmt.Sprintf("while_%d", whileCounter)
	fs := build.NewFrameScope(gr.b, frame)

	merges := make([]*graph.Node, len(loopVars))
	mergeOuts := make([]Output, len(loopVars))
	for i, v := range loopVars {
		enter := gr.b.Node("Enter", []graph.Endpoint{v.ep}, frame+"/enter",
			map[string]any{"frame_name": frame})
		if enter == nil {
			return nil
		}
		// The explicit FrameAttr matters when this loop nests inside
		// another: an enclosing scope's onAdd hook is still installed here
		// and would otherwise stamp the outer frame first.
		m := gr.b.Node("Merge", []graph.Endpoint{enter.Out(0)}, frame+"/merge",
			map[string]any{graph.FrameAttr: frame})
		if m == nil {
			return nil
		}
		fs.MarkResident(enter, m)
		merges[i] = m
		mergeOuts[i] = gr.wrap(m.Out(0))
	}
	invs := make([]Output, len(invariants))
	for i, v := range invariants {
		enter := gr.b.Node("Enter", []graph.Endpoint{v.ep}, frame+"/enter_const",
			map[string]any{"frame_name": frame, "is_constant": true})
		if enter == nil {
			return nil
		}
		fs.MarkResident(enter)
		invs[i] = gr.wrap(enter.Out(0))
	}

	// The hidden trip counter: one more loop variable counting executed
	// iterations, entered at 0 and incremented by the body section below.
	countEnter := gr.b.Node("Enter", []graph.Endpoint{gr.b.Const(tensor.ScalarInt(0))},
		frame+"/count_enter", map[string]any{"frame_name": frame, graph.LoopCounterAttr: true})
	if countEnter == nil {
		return nil
	}
	countMerge := gr.b.Node("Merge", []graph.Endpoint{countEnter.Out(0)}, frame+"/count_merge",
		map[string]any{graph.FrameAttr: frame})
	if countMerge == nil {
		return nil
	}
	fs.MarkResident(countEnter, countMerge)

	// Install the frame scope for the cond/body closures (and the loop
	// skeleton below, so Switches and Exits are stamped as frame members).
	fs.Install()
	defer fs.Remove()

	pred := cond(mergeOuts, invs)
	if !pred.Valid() {
		gr.b.Fail(fmt.Errorf("tf: While cond returned an invalid output"))
		return nil
	}
	loopCond := gr.b.Node("LoopCond", []graph.Endpoint{pred.ep}, frame+"/loopcond", nil)
	if loopCond == nil {
		return nil
	}

	bodyIns := make([]Output, len(loopVars))
	exits := make([]Output, len(loopVars))
	for i := range loopVars {
		sw := gr.b.Node("Switch", []graph.Endpoint{merges[i].Out(0), loopCond.Out(0)}, frame+"/switch", nil)
		if sw == nil {
			return nil
		}
		exit := gr.b.Node("Exit", []graph.Endpoint{sw.Out(0)}, frame+"/exit", nil)
		if exit == nil {
			return nil
		}
		exits[i] = gr.wrap(exit.Out(0))
		bodyIns[i] = gr.wrap(sw.Out(1))
	}

	// Counter skeleton: count' = count + 1 each executed iteration; the Exit
	// delivers the final count — the forward trip count N.
	countSwitch := gr.b.Node("Switch", []graph.Endpoint{countMerge.Out(0), loopCond.Out(0)}, frame+"/count_switch", nil)
	if countSwitch == nil {
		return nil
	}
	countExit := gr.b.Node("Exit", []graph.Endpoint{countSwitch.Out(0)}, frame+"/count_exit",
		map[string]any{graph.LoopCounterAttr: true})
	if countExit == nil {
		return nil
	}
	countNext := gr.b.Node("NextIteration",
		[]graph.Endpoint{gr.b.Add(countSwitch.Out(1), gr.b.Const(tensor.ScalarInt(1)))},
		frame+"/count_next", nil)
	if countNext == nil {
		return nil
	}
	if err := gr.g.AddBackEdge(countMerge, countNext.Out(0)); err != nil {
		gr.b.Fail(err)
		return nil
	}

	bodyOuts := body(bodyIns, invs)
	if len(bodyOuts) != len(loopVars) {
		gr.b.Fail(fmt.Errorf("tf: While body returned %d outputs for %d loop variables", len(bodyOuts), len(loopVars)))
		return nil
	}
	for i, out := range bodyOuts {
		if !out.Valid() {
			gr.b.Fail(fmt.Errorf("tf: While body output %d is invalid", i))
			return nil
		}
		next := gr.b.Node("NextIteration", []graph.Endpoint{out.ep}, frame+"/next", nil)
		if next == nil {
			return nil
		}
		if err := gr.g.AddBackEdge(merges[i], next.Out(0)); err != nil {
			gr.b.Fail(err)
			return nil
		}
	}
	return exits
}
