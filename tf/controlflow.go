package tf

import (
	"fmt"

	"repro/internal/graph"
)

// Cond builds a non-strict conditional (§3.4, Figure 2): each input is
// routed through a Switch so that only the taken branch's operations
// execute; the untaken branch receives dead values that propagate until the
// final Merge. Both branch functions receive the switched inputs and must
// derive their results from them (operations not depending on a switched
// input execute unconditionally, as in the reference system). The branches
// must return the same number of outputs with matching types.
func (gr *Graph) Cond(pred Output, inputs []Output, thenFn, elseFn func(ins []Output) []Output) []Output {
	if len(inputs) == 0 {
		gr.b.Fail(fmt.Errorf("tf: Cond needs at least one input to gate the branches"))
		return nil
	}
	thenIns := make([]Output, len(inputs))
	elseIns := make([]Output, len(inputs))
	for i, in := range inputs {
		sw := gr.b.Node("Switch", []graph.Endpoint{in.ep, pred.ep}, "cond/switch", nil)
		if sw == nil {
			return nil
		}
		elseIns[i] = gr.wrap(sw.Out(0)) // false side
		thenIns[i] = gr.wrap(sw.Out(1)) // true side
	}
	thenOuts := thenFn(thenIns)
	elseOuts := elseFn(elseIns)
	if len(thenOuts) != len(elseOuts) {
		gr.b.Fail(fmt.Errorf("tf: Cond branches returned %d and %d outputs", len(thenOuts), len(elseOuts)))
		return nil
	}
	merged := make([]Output, len(thenOuts))
	for i := range thenOuts {
		m := gr.b.Node("Merge", []graph.Endpoint{elseOuts[i].ep, thenOuts[i].ep}, "cond/merge", nil)
		if m == nil {
			return nil
		}
		merged[i] = gr.wrap(m.Out(0))
	}
	return merged
}

var whileCounter int

// loopCtx is the while-loop construction context: while it is installed on
// the builder, any input whose producer does not execute inside the frame is
// automatically routed through a constant Enter, exactly like the reference
// system's control-flow contexts (§3.4). "Executes inside the frame" means
// the node has at least one in-frame input: source nodes (Const, Variable)
// always execute in the caller's frame, so even constants created textually
// inside the body closure are captured through an Enter.
type loopCtx struct {
	gr           *Graph
	frame        string
	resident     map[*graph.Node]bool
	enterCache   map[graph.Endpoint]graph.Endpoint
	parentMapper func(graph.Endpoint) graph.Endpoint
}

func (lc *loopCtx) mapInput(ep graph.Endpoint) graph.Endpoint {
	if lc.resident[ep.Node] {
		return ep
	}
	if cached, ok := lc.enterCache[ep]; ok {
		return cached
	}
	src := ep
	if lc.parentMapper != nil {
		// The value may live several frames up: let the enclosing loop
		// capture it first so our Enter's input is in our parent frame.
		src = lc.parentMapper(src)
		if src.Node == nil {
			return graph.Endpoint{}
		}
	}
	// Build the capture Enter with hooks suspended: its input must stay
	// in the parent frame.
	oldMap := lc.gr.b.SetInputMapper(nil)
	oldAdd := lc.gr.b.SetOnAdd(nil)
	enter := lc.gr.b.Node("Enter", []graph.Endpoint{src}, lc.frame+"/capture",
		map[string]any{"frame_name": lc.frame, "is_constant": true})
	lc.gr.b.SetInputMapper(oldMap)
	lc.gr.b.SetOnAdd(oldAdd)
	if enter == nil {
		return graph.Endpoint{}
	}
	lc.resident[enter] = true
	lc.enterCache[ep] = enter.Out(0)
	return enter.Out(0)
}

func (lc *loopCtx) onAdd(n *graph.Node) {
	// After input mapping, every input of a node built under this context
	// is in-frame, so any node with inputs executes in-frame. Zero-input
	// nodes (constants) stay outside and are captured on use.
	if n.NumInputs() > 0 {
		lc.resident[n] = true
	}
}

// While builds an iteration (§3.4) with the timely-dataflow-inspired frame
// structure: Enter pushes loop variables into a new frame, Merge joins the
// initial value with the NextIteration back edge, LoopCond gates a Switch
// per variable, Exit delivers the final values, and NextIteration feeds the
// body results back. Values captured from outside the loop (including
// constants created inside the closures) are routed through constant Enter
// nodes automatically.
//
// invariants optionally pre-captures loop-invariant values, passed to the
// closures as invs; automatic capture makes this a convenience rather than
// a requirement.
func (gr *Graph) While(loopVars []Output, invariants []Output,
	cond func(vars, invs []Output) Output,
	body func(vars, invs []Output) []Output) []Output {

	if len(loopVars) == 0 {
		gr.b.Fail(fmt.Errorf("tf: While needs at least one loop variable"))
		return nil
	}
	whileCounter++
	frame := fmt.Sprintf("while_%d", whileCounter)
	lc := &loopCtx{
		gr:         gr,
		frame:      frame,
		resident:   map[*graph.Node]bool{},
		enterCache: map[graph.Endpoint]graph.Endpoint{},
	}

	merges := make([]*graph.Node, len(loopVars))
	mergeOuts := make([]Output, len(loopVars))
	for i, v := range loopVars {
		enter := gr.b.Node("Enter", []graph.Endpoint{v.ep}, frame+"/enter",
			map[string]any{"frame_name": frame})
		if enter == nil {
			return nil
		}
		lc.resident[enter] = true
		m := gr.b.Node("Merge", []graph.Endpoint{enter.Out(0)}, frame+"/merge", nil)
		if m == nil {
			return nil
		}
		lc.resident[m] = true
		merges[i] = m
		mergeOuts[i] = gr.wrap(m.Out(0))
	}
	invs := make([]Output, len(invariants))
	for i, v := range invariants {
		enter := gr.b.Node("Enter", []graph.Endpoint{v.ep}, frame+"/enter_const",
			map[string]any{"frame_name": frame, "is_constant": true})
		if enter == nil {
			return nil
		}
		lc.resident[enter] = true
		invs[i] = gr.wrap(enter.Out(0))
	}

	// Install the loop context for the cond/body closures.
	lc.parentMapper = gr.b.SetInputMapper(lc.mapInput)
	prevAdd := gr.b.SetOnAdd(lc.onAdd)
	gr.st.loopStack = append(gr.st.loopStack, lc)
	popped := false
	restore := func() {
		gr.b.SetInputMapper(lc.parentMapper)
		gr.b.SetOnAdd(prevAdd)
		if !popped {
			popped = true
			gr.st.loopStack = gr.st.loopStack[:len(gr.st.loopStack)-1]
		}
	}

	pred := cond(mergeOuts, invs)
	if !pred.Valid() {
		restore()
		gr.b.Fail(fmt.Errorf("tf: While cond returned an invalid output"))
		return nil
	}
	loopCond := gr.b.Node("LoopCond", []graph.Endpoint{pred.ep}, frame+"/loopcond", nil)
	if loopCond == nil {
		restore()
		return nil
	}

	bodyIns := make([]Output, len(loopVars))
	exits := make([]Output, len(loopVars))
	exitNodes := make([]*graph.Node, len(loopVars))
	for i := range loopVars {
		sw := gr.b.Node("Switch", []graph.Endpoint{merges[i].Out(0), loopCond.Out(0)}, frame+"/switch", nil)
		if sw == nil {
			restore()
			return nil
		}
		exit := gr.b.Node("Exit", []graph.Endpoint{sw.Out(0)}, frame+"/exit", nil)
		if exit == nil {
			restore()
			return nil
		}
		exitNodes[i] = exit
		exits[i] = gr.wrap(exit.Out(0))
		bodyIns[i] = gr.wrap(sw.Out(1))
	}

	bodyOuts := body(bodyIns, invs)
	if len(bodyOuts) != len(loopVars) {
		restore()
		gr.b.Fail(fmt.Errorf("tf: While body returned %d outputs for %d loop variables", len(bodyOuts), len(loopVars)))
		return nil
	}
	for i, out := range bodyOuts {
		if !out.Valid() {
			restore()
			gr.b.Fail(fmt.Errorf("tf: While body output %d is invalid", i))
			return nil
		}
		next := gr.b.Node("NextIteration", []graph.Endpoint{out.ep}, frame+"/next", nil)
		if next == nil {
			restore()
			return nil
		}
		if err := gr.g.AddBackEdge(merges[i], next.Out(0)); err != nil {
			restore()
			gr.b.Fail(err)
			return nil
		}
	}
	restore()
	// Exit values are delivered into the enclosing frame, so an enclosing
	// loop context must treat them as resident.
	if len(gr.st.loopStack) > 0 {
		outer := gr.st.loopStack[len(gr.st.loopStack)-1]
		for _, e := range exitNodes {
			outer.resident[e] = true
		}
	}
	return exits
}
