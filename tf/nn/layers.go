// Package nn provides neural-network building blocks as user-level graph
// construction, the layering the paper prescribes (§5: "users compose
// standard operations to build higher-level abstractions, such as neural
// network layers"): dense and convolutional layers, an LSTM cell (the
// LSTM-512-512 of §6.4), the sharded embedding layer of §4.2/Figure 3, and
// the full and sampled softmax classifiers compared in §6.4.
package nn

import (
	"fmt"
	"math"

	"repro/tf"
)

// Activation is an element-wise nonlinearity applied by layers.
type Activation func(g *tf.Graph, x tf.Output) tf.Output

// Standard activations.
var (
	// Linear applies no nonlinearity.
	Linear Activation = func(g *tf.Graph, x tf.Output) tf.Output { return x }
	// ReLU applies max(x, 0).
	ReLU Activation = func(g *tf.Graph, x tf.Output) tf.Output { return g.Relu(x) }
	// TanhAct applies tanh.
	TanhAct Activation = func(g *tf.Graph, x tf.Output) tf.Output { return g.Tanh(x) }
	// SigmoidAct applies the logistic function.
	SigmoidAct Activation = func(g *tf.Graph, x tf.Output) tf.Output { return g.Sigmoid(x) }
)

// Dense applies y = act(x·W + b) with W [in, units] initialized from a
// truncated normal scaled by 1/√in and b zero.
func Dense(g *tf.Graph, name string, x tf.Output, units int, act Activation) (tf.Output, []*tf.Variable) {
	in := x.Shape()[x.Shape().Rank()-1]
	std := 1.0 / math.Sqrt(float64(in))
	w := g.NewVariable(name+"/w", g.TruncatedNormal(tf.Float32, tf.Shape{in, units}, 0, std))
	b := g.NewVariableFromTensor(name+"/b", tf.NewTensor(tf.Float32, tf.Shape{units}))
	y := g.BiasAdd(g.MatMul(x, w.Value()), b.Value())
	return act(g, y), []*tf.Variable{w, b}
}

// Conv2DLayer applies act(conv2d(x, W) + b) on NHWC input with an HWIO
// filter of the given spatial kernel and output channels.
func Conv2DLayer(g *tf.Graph, name string, x tf.Output, filters, kh, kw int,
	strides [2]int, padding string, act Activation) (tf.Output, []*tf.Variable) {
	inC := x.Shape()[3]
	fanIn := float64(kh * kw * inC)
	std := math.Sqrt(2 / fanIn)
	w := g.NewVariable(name+"/filter", g.TruncatedNormal(tf.Float32, tf.Shape{kh, kw, inC, filters}, 0, std))
	b := g.NewVariableFromTensor(name+"/b", tf.NewTensor(tf.Float32, tf.Shape{filters}))
	y := g.BiasAdd(g.Conv2D(x, w.Value(), strides, padding), b.Value())
	return act(g, y), []*tf.Variable{w, b}
}

// Flatten reshapes [batch, ...] to [batch, prod(...)].
func Flatten(g *tf.Graph, x tf.Output) tf.Output {
	rest := 1
	for _, d := range x.Shape()[1:] {
		if d < 0 {
			rest = -1
			break
		}
		rest *= d
	}
	return g.Reshape(x, tf.Shape{x.Shape()[0], rest})
}

// LSTMCell is a standard LSTM with concatenated gate weights, the network
// of the language-modeling experiment (§6.4, LSTM-512-512 from Józefowicz
// et al.). All four gates share one [in+hidden, 4·hidden] matrix multiply.
type LSTMCell struct {
	Hidden int
	W      *tf.Variable // [in+hidden, 4*hidden]
	B      *tf.Variable // [4*hidden]
}

// NewLSTMCell creates an LSTM cell.
func NewLSTMCell(g *tf.Graph, name string, inputSize, hidden int) *LSTMCell {
	std := 1.0 / math.Sqrt(float64(inputSize+hidden))
	w := g.NewVariable(name+"/w", g.TruncatedNormal(tf.Float32, tf.Shape{inputSize + hidden, 4 * hidden}, 0, std))
	b := g.NewVariableFromTensor(name+"/b", tf.NewTensor(tf.Float32, tf.Shape{4 * hidden}))
	return &LSTMCell{Hidden: hidden, W: w, B: b}
}

// Vars returns the cell's trainable variables.
func (c *LSTMCell) Vars() []*tf.Variable { return []*tf.Variable{c.W, c.B} }

// Step advances the cell one timestep: x [batch, in], h/cs [batch, hidden].
func (c *LSTMCell) Step(g *tf.Graph, x, h, cs tf.Output) (hNext, cNext tf.Output) {
	concat := g.Concat(1, x, h)
	gates := g.BiasAdd(g.MatMul(concat, c.W.Value()), c.B.Value())
	parts := g.Split(gates, 1, []int{c.Hidden, c.Hidden, c.Hidden, c.Hidden})
	i := g.Sigmoid(parts[0])
	f := g.Sigmoid(parts[1])
	o := g.Sigmoid(parts[2])
	cand := g.Tanh(parts[3])
	cNext = g.Add(g.Mul(f, cs), g.Mul(i, cand))
	hNext = g.Mul(o, g.Tanh(cNext))
	return hNext, cNext
}

// ZeroState returns zero h and c for the given batch size.
func (c *LSTMCell) ZeroState(g *tf.Graph, batch int) (h, cs tf.Output) {
	zero := g.Const(tf.NewTensor(tf.Float32, tf.Shape{batch, c.Hidden}))
	return zero, g.Identity(zero)
}

// Unroll applies the cell across a sequence of inputs, returning the
// per-step hidden states (the static unrolling used before dynamic loops;
// the executor's Switch/Merge loops offer the §3.4 alternative).
func (c *LSTMCell) Unroll(g *tf.Graph, inputs []tf.Output, h, cs tf.Output) ([]tf.Output, tf.Output, tf.Output) {
	outs := make([]tf.Output, len(inputs))
	for i, x := range inputs {
		h, cs = c.Step(g, x, h, cs)
		outs[i] = h
	}
	return outs, h, cs
}

// CrossEntropyLoss is mean softmax cross-entropy over a batch with integer
// labels plus optional L2 weight decay.
func CrossEntropyLoss(g *tf.Graph, logits, labels tf.Output, l2 float64, vars []*tf.Variable) tf.Output {
	loss := g.Mean(g.SparseSoftmaxCrossEntropy(logits, labels), nil, false)
	if l2 > 0 {
		terms := []tf.Output{loss}
		for _, v := range vars {
			terms = append(terms, g.Mul(g.Const(float32(l2)), g.L2Loss(v.Value())))
		}
		loss = g.AddN(terms...)
	}
	return loss
}

// Accuracy is the fraction of rows where argmax(logits) equals the label.
func Accuracy(g *tf.Graph, logits, labels tf.Output) tf.Output {
	pred := g.ArgMax(logits, 1)
	correct := g.Cast(g.Equal(pred, g.Cast(labels, tf.Int64)), tf.Float32)
	return g.Mean(correct, nil, false)
}

// Classifier chains Dense layers with ReLU and a linear head.
func Classifier(g *tf.Graph, name string, x tf.Output, hidden []int, classes int) (tf.Output, []*tf.Variable) {
	var vars []*tf.Variable
	cur := x
	for i, units := range hidden {
		var vs []*tf.Variable
		cur, vs = Dense(g, fmt.Sprintf("%s/fc%d", name, i), cur, units, ReLU)
		vars = append(vars, vs...)
	}
	logits, vs := Dense(g, name+"/head", cur, classes, Linear)
	return logits, append(vars, vs...)
}
