package nn

import (
	"fmt"
	"math"

	"repro/tf"
)

// ShardedEmbedding is the sparse embedding layer of §4.2 (Figure 3): an
// n×d embedding matrix split row-wise across several parameter-server
// tasks, read with Gather and reassembled with DynamicPartition /
// DynamicStitch, so a lookup touches only the rows a batch references and
// each shard's traffic goes to the task that owns it.
type ShardedEmbedding struct {
	Vocab  int
	Dim    int
	Shards []*tf.Variable
}

// NewShardedEmbedding creates numShards row-sharded embedding variables.
// Shard s owns the rows whose id ≡ s (mod numShards), matching the "Mod"
// routing of Figure 3. deviceFor, when non-nil, names the device for each
// shard (e.g. a different "/job:ps/task:i" per shard).
func NewShardedEmbedding(g *tf.Graph, name string, vocab, dim, numShards int,
	deviceFor func(shard int) string) (*ShardedEmbedding, error) {
	if numShards < 1 || vocab < numShards {
		return nil, fmt.Errorf("nn: embedding needs 1 <= shards (%d) <= vocab (%d)", numShards, vocab)
	}
	e := &ShardedEmbedding{Vocab: vocab, Dim: dim}
	std := 1.0 / math.Sqrt(float64(dim))
	for s := 0; s < numShards; s++ {
		rows := vocab / numShards
		if s < vocab%numShards {
			rows++
		}
		init := g.TruncatedNormal(tf.Float32, tf.Shape{rows, dim}, 0, std)
		v := g.NewVariable(fmt.Sprintf("%s/shard_%d", name, s), init)
		if deviceFor != nil && v.Node() != nil {
			v.Node().SetDevice(deviceFor(s))
		}
		e.Shards = append(e.Shards, v)
	}
	return e, g.Err()
}

// Vars returns the shard variables (for optimizers and savers).
func (e *ShardedEmbedding) Vars() []*tf.Variable { return e.Shards }

// Lookup embeds integer ids [batch] into vectors [batch, dim] with the
// Figure-3 dataflow: Mod routes each id to its shard, a dynamic Part splits
// the indices, a Gather per shard reads only the referenced rows, and a
// Stitch reassembles the batch order. Every op has a registered gradient,
// so backpropagation yields sparse per-shard updates (§4.2).
func (e *ShardedEmbedding) Lookup(g *tf.Graph, ids tf.Output) tf.Output {
	n := len(e.Shards)
	if n == 1 {
		return g.Gather(e.Shards[0].Value(), ids)
	}
	shardsC := g.Const(int32(n))
	shardOf := g.Sub(ids, g.Mul(g.Div(ids, shardsC), shardsC)) // ids mod n
	rowOf := g.Div(ids, shardsC)                               // row within shard

	rowParts := g.DynamicPartition(rowOf, shardOf, n)
	// Original positions, to invert the partition at the Stitch.
	positions := g.BuildOp("Range", "", nil,
		g.Const(int32(0)), g.Cast(sizeOf(g, ids), tf.Int32), g.Const(int32(1))).Output(0)
	posParts := g.DynamicPartition(positions, shardOf, n)

	gathered := make([]tf.Output, n)
	for s := 0; s < n; s++ {
		gathered[s] = g.Gather(e.Shards[s].Value(), rowParts[s])
	}
	return g.DynamicStitch(posParts, gathered)
}

func sizeOf(g *tf.Graph, x tf.Output) tf.Output {
	return g.BuildOp("Size", "", nil, x).Output(0)
}

// SoftmaxWeights are the output-layer parameters of a language model: a
// [vocab, dim] weight matrix (sharded like an embedding) and a [vocab]
// bias.
type SoftmaxWeights struct {
	W *ShardedEmbedding
	B *tf.Variable
}

// NewSoftmaxWeights creates softmax weights sharded across numShards.
func NewSoftmaxWeights(g *tf.Graph, name string, vocab, dim, numShards int,
	deviceFor func(shard int) string) (*SoftmaxWeights, error) {
	w, err := NewShardedEmbedding(g, name+"/w", vocab, dim, numShards, deviceFor)
	if err != nil {
		return nil, err
	}
	b := g.NewVariableFromTensor(name+"/b", tf.NewTensor(tf.Float32, tf.Shape{vocab}))
	return &SoftmaxWeights{W: w, B: b}, g.Err()
}

// Vars returns all trainable variables.
func (s *SoftmaxWeights) Vars() []*tf.Variable {
	return append(append([]*tf.Variable{}, s.W.Vars()...), s.B)
}

// FullSoftmaxLoss computes the exact softmax cross-entropy over the whole
// vocabulary: logits = hidden · Wᵀ + b (the dashed lines of Figure 9 — a
// |V|-wide matrix multiply per step).
func (s *SoftmaxWeights) FullSoftmaxLoss(g *tf.Graph, hidden, labels tf.Output) tf.Output {
	if len(s.W.Shards) == 1 {
		logits := g.Add(g.MatMulT(hidden, s.W.Shards[0].Value(), false, true), s.B.Value())
		return g.Mean(g.SparseSoftmaxCrossEntropy(logits, labels), nil, false)
	}
	// Model parallelism (§6.4): each shard computes its partial logits
	// where its rows live; results concatenate along the class axis in
	// shard-interleaved order, so labels are remapped accordingly.
	n := len(s.W.Shards)
	parts := make([]tf.Output, n)
	for i, shard := range s.W.Shards {
		parts[i] = g.MatMulT(hidden, shard.Value(), false, true)
	}
	biasOrdered := g.Gather(s.B.Value(), shardOrder(g, s.W.Vocab, n)) // [vocab], shard order
	logits := g.Add(g.Concat(1, parts...), biasOrdered)
	remapped := remapLabels(g, labels, s.W.Vocab, n)
	return g.Mean(g.SparseSoftmaxCrossEntropy(logits, remapped), nil, false)
}

// shardOrder returns the vocabulary ids in shard-concatenated order:
// shard 0's rows (ids ≡ 0 mod n) first, then shard 1's, etc.
func shardOrder(g *tf.Graph, vocab, n int) tf.Output {
	order := make([]int32, 0, vocab)
	for s := 0; s < n; s++ {
		for id := s; id < vocab; id += n {
			order = append(order, int32(id))
		}
	}
	return g.Const(order)
}

// remapLabels converts vocabulary ids to their column in the
// shard-concatenated logits.
func remapLabels(g *tf.Graph, labels tf.Output, vocab, n int) tf.Output {
	// column(id) = offset(shard) + id/n where shard = id mod n.
	inverse := make([]int32, vocab)
	col := 0
	for s := 0; s < n; s++ {
		for id := s; id < vocab; id += n {
			inverse[id] = int32(col)
			col++
		}
	}
	return g.Gather(g.Const(inverse), labels)
}

// SampledSoftmaxLoss approximates the softmax loss using the true class
// plus numSampled log-uniform false classes (§4.2, §6.4: "sampled softmax
// … performs a sparse multiplication based on the true class for an
// example and a set of randomly sampled false classes", reducing the data
// transferred and the computation performed by |V|/numSampled).
func (s *SoftmaxWeights) SampledSoftmaxLoss(g *tf.Graph, hidden, labels tf.Output, numSampled int) tf.Output {
	sampledIDs, expected := g.LogUniformCandidateSampler(numSampled, s.W.Vocab)

	batch := hidden.Shape()[0]
	dim := hidden.Shape()[1]

	// True-class logits: one row gather per example, then a row-wise dot
	// product — no dense |V|-wide multiply anywhere. The sharded lookup's
	// result shape is dynamic (DynamicStitch), so pin it statically for
	// the differentiable ops downstream.
	wTrue := g.Reshape(s.lookupRows(g, labels), tf.Shape{batch, dim})
	bTrue := g.Gather(s.B.Value(), labels)
	trueLogit := g.Add(g.Sum(g.Mul(hidden, wTrue), []int{1}, false), bTrue) // [batch]

	// Sampled-class logits: [batch, numSampled].
	wSampled := g.Reshape(s.lookupRows(g, sampledIDs), tf.Shape{numSampled, dim})
	bSampled := g.Gather(s.B.Value(), sampledIDs)
	sampledLogits := g.Add(g.MatMulT(hidden, wSampled, false, true), bSampled)
	// Subtract log expected counts so the estimator stays unbiased.
	sampledLogits = g.Sub(sampledLogits, g.Log(g.Maximum(expected, g.Const(float32(1e-20)))))

	logits := g.Concat(1, g.Reshape(trueLogit, tf.Shape{-1, 1}), sampledLogits)
	zeros := g.ZerosLike(g.Cast(labels, tf.Int32))
	return g.Mean(g.SparseSoftmaxCrossEntropy(logits, zeros), nil, false)
}

// lookupRows gathers rows of the sharded weight matrix.
func (s *SoftmaxWeights) lookupRows(g *tf.Graph, ids tf.Output) tf.Output {
	return s.W.Lookup(g, ids)
}
