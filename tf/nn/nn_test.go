package nn_test

import (
	"math"
	"testing"

	"repro/tf"
	"repro/tf/nn"
	"repro/tf/train"
)

func TestDenseShapesAndForward(t *testing.T) {
	g := tf.NewGraph()
	g.SetSeed(1)
	x := g.Placeholder("x", tf.Float32, tf.Shape{3, 4})
	y, vars := nn.Dense(g, "fc", x, 5, nn.Linear)
	if err := g.Err(); err != nil {
		t.Fatal(err)
	}
	if !y.Shape().Equal(tf.Shape{3, 5}) {
		t.Fatalf("dense output shape %v", y.Shape())
	}
	if len(vars) != 2 {
		t.Fatalf("dense should own 2 variables")
	}
	sess, err := tf.NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.RunTargets(g.InitOp()); err != nil {
		t.Fatal(err)
	}
	out, err := sess.Fetch1(map[tf.Output]*tf.Tensor{x: tf.NewTensor(tf.Float32, tf.Shape{3, 4})}, y)
	if err != nil {
		t.Fatal(err)
	}
	// Zero input × anything + zero bias = zero.
	for _, v := range out.Float32s() {
		if v != 0 {
			t.Fatalf("zero input produced %v", out.Float32s())
		}
	}
}

func TestClassifierLearnsSyntheticImages(t *testing.T) {
	const batch, h, w, c, classes = 16, 6, 6, 1, 4
	g := tf.NewGraph()
	g.SetSeed(7)
	x := g.Placeholder("x", tf.Float32, tf.Shape{batch, h, w, c})
	labels := g.Placeholder("y", tf.Int32, tf.Shape{batch})
	flat := nn.Flatten(g, x)
	logits, vars := nn.Classifier(g, "clf", flat, []int{32}, classes)
	loss := nn.CrossEntropyLoss(g, logits, labels, 0, nil)
	acc := nn.Accuracy(g, logits, labels)
	opt := &train.Momentum{LearningRate: 0.05, Decay: 0.9}
	trainOp, err := opt.Minimize(g, loss, vars)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := tf.NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.RunTargets(g.InitOp()); err != nil {
		t.Fatal(err)
	}
	var finalAcc float64
	for i := 0; i < 150; i++ {
		xs, ys := nn.SyntheticImages(nil, int64(i%8), batch, h, w, c, classes)
		out, err := sess.Run(map[tf.Output]*tf.Tensor{x: xs, labels: ys}, []tf.Output{acc}, trainOp)
		if err != nil {
			t.Fatal(err)
		}
		finalAcc = out[0].FloatAt(0)
	}
	if finalAcc < 0.7 {
		t.Errorf("classifier accuracy after training = %g, want >= 0.7", finalAcc)
	}
}

func TestConvLayerTrains(t *testing.T) {
	const batch, hw, classes = 8, 8, 3
	g := tf.NewGraph()
	g.SetSeed(3)
	x := g.Placeholder("x", tf.Float32, tf.Shape{batch, hw, hw, 1})
	labels := g.Placeholder("y", tf.Int32, tf.Shape{batch})
	conv, cv := nn.Conv2DLayer(g, "conv1", x, 4, 3, 3, [2]int{1, 1}, "SAME", nn.ReLU)
	pooled := g.MaxPool(conv, [2]int{2, 2}, [2]int{2, 2}, "VALID")
	logits, fv := nn.Dense(g, "head", nn.Flatten(g, pooled), classes, nn.Linear)
	vars := append(cv, fv...)
	loss := nn.CrossEntropyLoss(g, logits, labels, 0, nil)
	opt := &train.GradientDescent{LearningRate: 0.05}
	trainOp, err := opt.Minimize(g, loss, vars)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := tf.NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.RunTargets(g.InitOp()); err != nil {
		t.Fatal(err)
	}
	xs, ys := nn.SyntheticImages(nil, 42, batch, hw, hw, 1, classes)
	first := -1.0
	last := -1.0
	for i := 0; i < 60; i++ {
		out, err := sess.Run(map[tf.Output]*tf.Tensor{x: xs, labels: ys}, []tf.Output{loss}, trainOp)
		if err != nil {
			t.Fatal(err)
		}
		if first < 0 {
			first = out[0].FloatAt(0)
		}
		last = out[0].FloatAt(0)
	}
	if last >= first {
		t.Errorf("conv net loss did not decrease: %g -> %g", first, last)
	}
}

func TestLSTMStepAndUnroll(t *testing.T) {
	const batch, in, hidden = 2, 3, 4
	g := tf.NewGraph()
	g.SetSeed(5)
	cell := nn.NewLSTMCell(g, "lstm", in, hidden)
	x := g.Placeholder("x", tf.Float32, tf.Shape{batch, in})
	h0, c0 := cell.ZeroState(g, batch)
	h1, c1 := cell.Step(g, x, h0, c0)
	if err := g.Err(); err != nil {
		t.Fatal(err)
	}
	if !h1.Shape().Equal(tf.Shape{batch, hidden}) || !c1.Shape().Equal(tf.Shape{batch, hidden}) {
		t.Fatalf("LSTM state shapes %v %v", h1.Shape(), c1.Shape())
	}
	sess, err := tf.NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.RunTargets(g.InitOp()); err != nil {
		t.Fatal(err)
	}
	xv := tf.NewRNG(1).Uniform(tf.Float32, tf.Shape{batch, in}, -1, 1)
	out, err := sess.Run(map[tf.Output]*tf.Tensor{x: xv}, []tf.Output{h1, c1})
	if err != nil {
		t.Fatal(err)
	}
	// Hidden state is bounded by tanh.
	for _, v := range out[0].Float32s() {
		if math.Abs(float64(v)) > 1 {
			t.Fatalf("LSTM hidden out of range: %v", out[0].Float32s())
		}
	}
}

func TestLSTMLearnsSequenceTask(t *testing.T) {
	// Predict the next token of a short repeating sequence through a
	// 2-step unrolled LSTM with embeddings.
	const vocab, dim, hidden, batch, steps = 8, 6, 12, 4, 2
	g := tf.NewGraph()
	g.SetSeed(11)
	emb, err := nn.NewShardedEmbedding(g, "emb", vocab, dim, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	cell := nn.NewLSTMCell(g, "lstm", dim, hidden)
	soft, err := nn.NewSoftmaxWeights(g, "soft", vocab, hidden, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	inputs := g.Placeholder("in", tf.Int32, tf.Shape{batch, steps})
	targets := g.Placeholder("tgt", tf.Int32, tf.Shape{batch, steps})
	h, c := cell.ZeroState(g, batch)
	var losses []tf.Output
	for s := 0; s < steps; s++ {
		ids := g.Squeeze(g.Slice(inputs, []int{0, s}, []int{batch, 1}), 1)
		tgt := g.Squeeze(g.Slice(targets, []int{0, s}, []int{batch, 1}), 1)
		x := emb.Lookup(g, ids)
		h, c = cell.Step(g, x, h, c)
		losses = append(losses, soft.FullSoftmaxLoss(g, h, tgt))
	}
	loss := g.Mul(g.AddN(losses...), g.Const(float32(1.0/steps)))
	vars := append(append(emb.Vars(), cell.Vars()...), soft.Vars()...)
	opt := &train.Adagrad{LearningRate: 0.5}
	trainOp, err := opt.Minimize(g, loss, vars)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := tf.NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.RunTargets(g.InitOp()); err != nil {
		t.Fatal(err)
	}
	corpus := []int32{1, 3, 5, 7, 1, 3, 5, 7, 1, 3, 5, 7, 1, 3, 5, 7}
	var first, last float64
	for i := 0; i < 120; i++ {
		in, tgt := nn.LMBatch(corpus, i, batch, steps)
		out, err := sess.Run(map[tf.Output]*tf.Tensor{inputs: in, targets: tgt}, []tf.Output{loss}, trainOp)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = out[0].FloatAt(0)
		}
		last = out[0].FloatAt(0)
	}
	if last > first/2 {
		t.Errorf("LSTM loss did not halve: %g -> %g", first, last)
	}
}

func TestShardedEmbeddingMatchesSingleShard(t *testing.T) {
	// Property (Figure 3): a sharded lookup must equal the unsharded one
	// when both hold the same logical matrix.
	const vocab, dim = 10, 3
	g := tf.NewGraph()
	// Build explicit row values: row i = (i, i+0.5, i+0.25).
	full := tf.NewTensor(tf.Float32, tf.Shape{vocab, dim})
	for i := 0; i < vocab; i++ {
		full.Float32s()[i*dim] = float32(i)
		full.Float32s()[i*dim+1] = float32(i) + 0.5
		full.Float32s()[i*dim+2] = float32(i) + 0.25
	}
	single := g.NewVariableFromTensor("single", full)

	sharded, err := nn.NewShardedEmbedding(g, "sharded", vocab, dim, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite shard contents to match: shard s row r = full row r*3+s.
	var assigns []*tf.Operation
	for s, shard := range sharded.Shards {
		rows := shard.Shape()[0]
		data := tf.NewTensor(tf.Float32, tf.Shape{rows, dim})
		for r := 0; r < rows; r++ {
			id := r*3 + s
			copy(data.Float32s()[r*dim:(r+1)*dim], full.Float32s()[id*dim:(id+1)*dim])
		}
		assigns = append(assigns, shard.Assign(g.Const(data)))
	}

	ids := g.Const([]int32{7, 0, 3, 3, 9, 2})
	fromSingle := g.Gather(single.Value(), ids)
	fromSharded := sharded.Lookup(g, ids)
	if err := g.Err(); err != nil {
		t.Fatal(err)
	}
	sess, err := tf.NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.RunTargets(g.InitOp()); err != nil {
		t.Fatal(err)
	}
	for _, a := range assigns {
		if err := sess.RunTargets(a); err != nil {
			t.Fatal(err)
		}
	}
	out, err := sess.Run(nil, []tf.Output{fromSingle, fromSharded})
	if err != nil {
		t.Fatal(err)
	}
	if !out[0].Equal(out[1]) {
		t.Errorf("sharded lookup %v != single %v", out[1], out[0])
	}
}

func TestShardedEmbeddingGradientTraining(t *testing.T) {
	// Training through Part/Gather/Stitch must only move gathered rows.
	const vocab, dim = 9, 2
	g := tf.NewGraph()
	g.SetSeed(2)
	emb, err := nn.NewShardedEmbedding(g, "emb", vocab, dim, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	ids := g.Const([]int32{4}) // shard 1, row 1
	looked := emb.Lookup(g, ids)
	loss := g.Sum(looked, nil, false)
	opt := &train.GradientDescent{LearningRate: 1}
	trainOp, err := opt.Minimize(g, loss, emb.Vars())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := tf.NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.RunTargets(g.InitOp()); err != nil {
		t.Fatal(err)
	}
	before := make([]*tf.Tensor, 3)
	for s, shard := range emb.Shards {
		before[s], _ = sess.Fetch1(nil, shard.Value())
	}
	if err := sess.RunTargets(trainOp); err != nil {
		t.Fatal(err)
	}
	for s, shard := range emb.Shards {
		after, err := sess.Fetch1(nil, shard.Value())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < after.NumElements(); i++ {
			delta := after.FloatAt(i) - before[s].FloatAt(i)
			touched := s == 1 && i/dim == 1
			if touched && math.Abs(delta+1) > 1e-5 {
				t.Errorf("shard %d row 1 delta = %g, want -1", s, delta)
			}
			if !touched && delta != 0 {
				t.Errorf("shard %d elem %d moved by %g", s, i, delta)
			}
		}
	}
}

func TestSampledSoftmaxApproximatesFullLoss(t *testing.T) {
	// With numSampled == vocab the sampled estimator sees (almost) every
	// class; more importantly, training with it must reduce the FULL
	// loss.
	const vocab, dim, batch = 30, 8, 8
	g := tf.NewGraph()
	g.SetSeed(13)
	soft, err := nn.NewSoftmaxWeights(g, "soft", vocab, dim, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	hidden := g.Placeholder("h", tf.Float32, tf.Shape{batch, dim})
	labels := g.Placeholder("y", tf.Int32, tf.Shape{batch})
	fullLoss := soft.FullSoftmaxLoss(g, hidden, labels)
	sampledLoss := soft.SampledSoftmaxLoss(g, hidden, labels, 16)
	opt := &train.Adagrad{LearningRate: 0.5}
	trainOp, err := opt.Minimize(g, sampledLoss, soft.Vars())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := tf.NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.RunTargets(g.InitOp()); err != nil {
		t.Fatal(err)
	}
	rng := tf.NewRNG(3)
	hv := rng.Uniform(tf.Float32, tf.Shape{batch, dim}, -1, 1)
	yv := tf.FromInt32s(tf.Shape{batch}, []int32{0, 3, 7, 11, 15, 19, 23, 27})
	feeds := map[tf.Output]*tf.Tensor{hidden: hv, labels: yv}
	firstT, err := sess.Fetch1(feeds, fullLoss)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := sess.Run(feeds, nil, trainOp); err != nil {
			t.Fatal(err)
		}
	}
	lastT, err := sess.Fetch1(feeds, fullLoss)
	if err != nil {
		t.Fatal(err)
	}
	if lastT.FloatAt(0) > firstT.FloatAt(0)*0.6 {
		t.Errorf("sampled-softmax training did not reduce full loss: %g -> %g",
			firstT.FloatAt(0), lastT.FloatAt(0))
	}
}

func TestZipfCorpusIsSkewed(t *testing.T) {
	corpus := nn.ZipfCorpus(5, 1000, 20000)
	low, high := 0, 0
	for _, id := range corpus {
		if id < 0 || id >= 1000 {
			t.Fatalf("token %d out of range", id)
		}
		if id < 10 {
			low++
		} else if id >= 500 {
			high++
		}
	}
	if low <= high {
		t.Errorf("Zipf corpus not skewed: low=%d high=%d", low, high)
	}
}

func TestLMBatchWrapsAround(t *testing.T) {
	corpus := []int32{0, 1, 2, 3, 4}
	in, tgt := nn.LMBatch(corpus, 3, 1, 4)
	wantIn := []int32{3, 4, 0, 1}
	wantTgt := []int32{4, 0, 1, 2}
	for i := range wantIn {
		if in.Int32s()[i] != wantIn[i] || tgt.Int32s()[i] != wantTgt[i] {
			t.Fatalf("LMBatch = %v/%v, want %v/%v", in.Int32s(), tgt.Int32s(), wantIn, wantTgt)
		}
	}
}

func TestLinearData(t *testing.T) {
	x, y := nn.LinearData(1, 100, 2, []float32{2, -1}, 0.5, 0)
	for i := 0; i < 100; i++ {
		want := 2*x.Float32s()[i*2] - x.Float32s()[i*2+1] + 0.5
		if math.Abs(float64(y.Float32s()[i]-want)) > 1e-5 {
			t.Fatalf("row %d: y = %g, want %g", i, y.Float32s()[i], want)
		}
	}
}
