package nn

import (
	"math"

	"repro/tf"
)

// Synthetic data generators replace the corpora the paper trains on
// (ImageNet and the One Billion Word Benchmark): the evaluation section
// measures system throughput, not model accuracy, so matched shapes and
// realistic sparsity patterns are what matter (see DESIGN.md).

// SyntheticImages draws a batch of NHWC images plus integer labels that are
// a deterministic (learnable) function of the image contents: the label is
// the argmax over `classes` fixed random projections of the image mean
// pattern, so models can drive training loss down.
func SyntheticImages(rng *tf.Tensor, seed int64, batch, h, w, c, classes int) (*tf.Tensor, *tf.Tensor) {
	r := tf.NewRNG(seed)
	images := r.Normal(tf.Float32, tf.Shape{batch, h, w, c}, 0, 1)
	proj := tf.NewRNG(seed^0x5deece66d).Normal(tf.Float64, tf.Shape{classes, h * w * c}, 0, 1)
	labels := tf.NewTensor(tf.Int32, tf.Shape{batch})
	hw := h * w * c
	for b := 0; b < batch; b++ {
		best, bestV := 0, math.Inf(-1)
		for cls := 0; cls < classes; cls++ {
			var dot float64
			for i := 0; i < hw; i++ {
				dot += float64(images.Float32s()[b*hw+i]) * proj.Float64s()[cls*hw+i]
			}
			if dot > bestV {
				bestV, best = dot, cls
			}
		}
		labels.Int32s()[b] = int32(best)
	}
	return images, labels
}

// ZipfCorpus generates a token stream with the Zipfian unigram statistics
// of natural language, the regime the log-uniform candidate sampler is
// built for (§6.4).
func ZipfCorpus(seed int64, vocab, length int) []int32 {
	r := tf.NewRNG(seed)
	out := make([]int32, length)
	for i := range out {
		out[i] = int32(r.LogUniformInt(vocab))
	}
	return out
}

// LMBatch cuts (input, target) id tensors of shape [batch, steps] from a
// corpus at the given offset, wrapping around.
func LMBatch(corpus []int32, offset, batch, steps int) (*tf.Tensor, *tf.Tensor) {
	in := tf.NewTensor(tf.Int32, tf.Shape{batch, steps})
	tgt := tf.NewTensor(tf.Int32, tf.Shape{batch, steps})
	n := len(corpus)
	for b := 0; b < batch; b++ {
		base := (offset + b*steps) % n
		for s := 0; s < steps; s++ {
			in.Int32s()[b*steps+s] = corpus[(base+s)%n]
			tgt.Int32s()[b*steps+s] = corpus[(base+s+1)%n]
		}
	}
	return in, tgt
}

// LinearData synthesizes (x, y) pairs for y = x·W* + b* + noise — the
// quickstart regression workload.
func LinearData(seed int64, n, features int, wTrue []float32, bTrue, noise float64) (*tf.Tensor, *tf.Tensor) {
	r := tf.NewRNG(seed)
	x := r.Uniform(tf.Float32, tf.Shape{n, features}, -1, 1)
	y := tf.NewTensor(tf.Float32, tf.Shape{n, 1})
	for i := 0; i < n; i++ {
		var v float64
		for j := 0; j < features; j++ {
			v += float64(x.Float32s()[i*features+j]) * float64(wTrue[j])
		}
		v += bTrue
		if noise > 0 {
			v += r.Normal(tf.Float64, tf.Shape{1}, 0, noise).Float64s()[0]
		}
		y.Float32s()[i] = float32(v)
	}
	return x, y
}
