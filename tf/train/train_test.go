package train_test

import (
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/tf"
	"repro/tf/train"
)

// quadratic builds loss = mean((w·x − y)²) for a fixed dataset whose
// optimum is w* = (2, −3).
func quadratic(t *testing.T, g *tf.Graph) (loss tf.Output, w *tf.Variable) {
	t.Helper()
	x := g.Const(tf.FromFloat32s(tf.Shape{4, 2}, []float32{
		1, 0,
		0, 1,
		1, 1,
		2, 1,
	}))
	y := g.Const(tf.FromFloat32s(tf.Shape{4, 1}, []float32{2, -3, -1, 1}))
	w = g.NewVariableFromTensor("w", tf.NewTensor(tf.Float32, tf.Shape{2, 1}))
	pred := g.MatMul(x, w.Value())
	loss = g.Mean(g.Square(g.Sub(pred, y)), nil, false)
	return loss, w
}

func trainToConvergence(t *testing.T, opt train.Optimizer, steps int, wantLoss float64) {
	t.Helper()
	g := tf.NewGraph()
	loss, w := quadratic(t, g)
	trainOp, err := opt.Minimize(g, loss, []*tf.Variable{w})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := tf.NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.RunTargets(g.InitOp()); err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < steps; i++ {
		out, err := sess.Run(nil, []tf.Output{loss}, trainOp)
		if err != nil {
			t.Fatal(err)
		}
		last = out[0].FloatAt(0)
	}
	if last > wantLoss {
		t.Errorf("%T: loss after %d steps = %g, want <= %g", opt, steps, last, wantLoss)
	}
	wv, err := sess.Fetch1(nil, w.Value())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wv.FloatAt(0)-2) > 0.2 || math.Abs(wv.FloatAt(1)+3) > 0.2 {
		t.Errorf("%T: learned w = (%g, %g), want (2, -3)", opt, wv.FloatAt(0), wv.FloatAt(1))
	}
}

func TestGradientDescentConverges(t *testing.T) {
	trainToConvergence(t, &train.GradientDescent{LearningRate: 0.1}, 400, 1e-4)
}

func TestMomentumConverges(t *testing.T) {
	trainToConvergence(t, &train.Momentum{LearningRate: 0.02, Decay: 0.9}, 400, 1e-4)
}

func TestAdagradConverges(t *testing.T) {
	trainToConvergence(t, &train.Adagrad{LearningRate: 0.5}, 600, 1e-3)
}

func TestRMSPropConverges(t *testing.T) {
	trainToConvergence(t, &train.RMSProp{LearningRate: 0.05, Decay: 0.9}, 900, 5e-3)
}

func TestAdadeltaConverges(t *testing.T) {
	trainToConvergence(t, &train.Adadelta{LearningRate: 1, Rho: 0.95}, 3000, 0.02)
}

func TestAdamConverges(t *testing.T) {
	trainToConvergence(t, &train.Adam{LearningRate: 0.1}, 500, 1e-3)
}

func TestSGDSparseUpdatesOnlyTouchGatheredRows(t *testing.T) {
	g := tf.NewGraph()
	emb := g.NewVariableFromTensor("emb", tf.FromFloat32s(tf.Shape{4, 2}, []float32{
		1, 1, 2, 2, 3, 3, 4, 4,
	}))
	idx := g.Const([]int32{1})
	rows := g.Gather(emb.Value(), idx)
	loss := g.Sum(rows, nil, false) // d/d emb[1] = 1
	opt := &train.GradientDescent{LearningRate: 0.5}
	trainOp, err := opt.Minimize(g, loss, []*tf.Variable{emb})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := tf.NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.RunTargets(g.InitOp()); err != nil {
		t.Fatal(err)
	}
	if err := sess.RunTargets(trainOp); err != nil {
		t.Fatal(err)
	}
	out, err := sess.Fetch1(nil, emb.Value())
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{1, 1, 1.5, 1.5, 3, 3, 4, 4} // only row 1 moved
	for i, v := range out.Float32s() {
		if v != want[i] {
			t.Fatalf("after sparse SGD emb = %v, want %v", out.Float32s(), want)
		}
	}
}

// TestMomentumSparseUpdatesOnlyTouchGatheredRows: Momentum's sparse path
// keeps lazy velocity semantics — only gathered rows accumulate velocity
// and move; untouched rows keep both their parameters and their slot state
// bit-identical.
func TestMomentumSparseUpdatesOnlyTouchGatheredRows(t *testing.T) {
	g := tf.NewGraph()
	emb := g.NewVariableFromTensor("emb", tf.FromFloat32s(tf.Shape{4, 2}, []float32{
		1, 1, 2, 2, 3, 3, 4, 4,
	}))
	idx := g.Const([]int32{1})
	rows := g.Gather(emb.Value(), idx)
	loss := g.Sum(rows, nil, false) // d/d emb[1] = 1
	opt := &train.Momentum{LearningRate: 0.5, Decay: 0.9}
	trainOp, err := opt.Minimize(g, loss, []*tf.Variable{emb})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := tf.NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.RunTargets(g.InitOp()); err != nil {
		t.Fatal(err)
	}
	const steps = 2
	for i := 0; i < steps; i++ {
		if err := sess.RunTargets(trainOp); err != nil {
			t.Fatal(err)
		}
	}
	// Replay the velocity recurrence in float32, like the graph computes it:
	// v ← v·decay + grad; row ← row − v·lr.
	var vel, want1 float32 = 0, 2
	for i := 0; i < steps; i++ {
		vel = vel*0.9 + 1
		want1 -= vel * 0.5
	}
	out, err := sess.Fetch1(nil, emb.Value())
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{1, 1, want1, want1, 3, 3, 4, 4}
	for i, v := range out.Float32s() {
		if v != want[i] {
			t.Fatalf("after sparse Momentum emb = %v, want %v", out.Float32s(), want)
		}
	}
}

func TestAdagradSparseAccumulatorStaysSparse(t *testing.T) {
	g := tf.NewGraph()
	emb := g.NewVariableFromTensor("emb", tf.FromFloat32s(tf.Shape{3, 1}, []float32{1, 1, 1}))
	idx := g.Const([]int32{2})
	loss := g.Sum(g.Gather(emb.Value(), idx), nil, false)
	opt := &train.Adagrad{LearningRate: 1, InitialAccum: 0.0001}
	trainOp, err := opt.Minimize(g, loss, []*tf.Variable{emb})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := tf.NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.RunTargets(g.InitOp()); err != nil {
		t.Fatal(err)
	}
	if err := sess.RunTargets(trainOp); err != nil {
		t.Fatal(err)
	}
	out, err := sess.Fetch1(nil, emb.Value())
	if err != nil {
		t.Fatal(err)
	}
	if out.FloatAt(0) != 1 || out.FloatAt(1) != 1 {
		t.Errorf("untouched rows moved: %v", out.Float32s())
	}
	if out.FloatAt(2) >= 1 {
		t.Errorf("gathered row did not move: %v", out.Float32s())
	}
}

func TestClipByGlobalNorm(t *testing.T) {
	g := tf.NewGraph()
	x := g.NewVariableFromTensor("x", tf.FromFloat32s(tf.Shape{2}, []float32{3, 4}))
	loss := g.Mul(g.Const(float32(100)), g.Sum(g.Square(x.Value()), nil, false))
	grads, err := g.Gradients([]tf.Output{loss}, []tf.Output{x.Value()})
	if err != nil {
		t.Fatal(err)
	}
	clipped, err := train.ClipByGlobalNorm(g, grads, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := tf.NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.RunTargets(g.InitOp()); err != nil {
		t.Fatal(err)
	}
	out, err := sess.Fetch1(nil, clipped[0].Dense)
	if err != nil {
		t.Fatal(err)
	}
	norm := math.Hypot(out.FloatAt(0), out.FloatAt(1))
	if math.Abs(norm-1) > 1e-4 {
		t.Errorf("clipped norm = %g, want 1", norm)
	}
	// Direction preserved: grad ∝ (3, 4).
	if math.Abs(out.FloatAt(0)/out.FloatAt(1)-0.75) > 1e-4 {
		t.Errorf("clip changed direction: %v", out.Float32s())
	}
}

func TestSaverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := tf.NewGraph()
	a := g.NewVariableFromTensor("a", tf.FromFloat32s(tf.Shape{2}, []float32{1, 2}))
	b := g.NewVariableFromTensor("b", tf.Scalar(7))
	saver, err := train.NewSaver(g, []*tf.Variable{a, b})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := tf.NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.RunTargets(g.InitOp()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "model.ckpt")
	if err := saver.Save(sess, path); err != nil {
		t.Fatal(err)
	}
	// Clobber, then restore.
	if err := sess.RunTargets(a.Assign(g.Const([]float32{9, 9}))); err != nil {
		t.Fatal(err)
	}
	if err := saver.Restore(sess, path); err != nil {
		t.Fatal(err)
	}
	av, err := sess.Fetch1(nil, a.Value())
	if err != nil {
		t.Fatal(err)
	}
	if av.FloatAt(0) != 1 || av.FloatAt(1) != 2 {
		t.Errorf("restored a = %v", av)
	}
}

func TestSaverRetentionAndLatest(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "ckpt")
	g := tf.NewGraph()
	v := g.NewVariableFromTensor("v", tf.Scalar(0))
	saver, err := train.NewSaver(g, []*tf.Variable{v})
	if err != nil {
		t.Fatal(err)
	}
	saver.KeepCheckpoints = 2
	sess, err := tf.NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.RunTargets(g.InitOp()); err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= 5; step++ {
		if err := sess.RunTargets(v.Assign(g.Const(float32(step)))); err != nil {
			t.Fatal(err)
		}
		if _, err := saver.SaveStep(sess, prefix, step); err != nil {
			t.Fatal(err)
		}
	}
	files, err := filepath.Glob(prefix + "-*")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Errorf("retention kept %d checkpoints, want 2: %v", len(files), files)
	}
	// Fresh session ("restart after failure", §4.3) restores the latest.
	sess2, err := tf.NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	found, err := saver.RestoreLatest(sess2, prefix)
	if err != nil || !found {
		t.Fatalf("RestoreLatest: found=%t err=%v", found, err)
	}
	vv, err := sess2.Fetch1(nil, v.Value())
	if err != nil {
		t.Fatal(err)
	}
	if vv.FloatAt(0) != 5 {
		t.Errorf("restored v = %v, want 5", vv)
	}
	// Missing prefix reports not found without error.
	found, err = saver.RestoreLatest(sess2, filepath.Join(dir, "nope"))
	if err != nil || found {
		t.Errorf("missing checkpoint: found=%t err=%v", found, err)
	}
}

func TestSaverSupportsFineTuningAcrossGraphs(t *testing.T) {
	// Transfer learning (§4.3): train a "base" variable in one graph,
	// restore it into a different graph that adds a new head.
	dir := t.TempDir()
	path := filepath.Join(dir, "pretrained.ckpt")
	{
		g := tf.NewGraph()
		base := g.NewVariableFromTensor("base", tf.FromFloat32s(tf.Shape{2}, []float32{5, 6}))
		saver, err := train.NewSaver(g, []*tf.Variable{base})
		if err != nil {
			t.Fatal(err)
		}
		sess, err := tf.NewSession(g)
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.RunTargets(g.InitOp()); err != nil {
			t.Fatal(err)
		}
		if err := saver.Save(sess, path); err != nil {
			t.Fatal(err)
		}
	}
	g2 := tf.NewGraph()
	base := g2.NewVariableFromTensor("base", tf.FromFloat32s(tf.Shape{2}, []float32{0, 0}))
	head := g2.NewVariableFromTensor("head", tf.Scalar(1))
	saver2, err := train.NewSaver(g2, []*tf.Variable{base})
	if err != nil {
		t.Fatal(err)
	}
	sess2, err := tf.NewSession(g2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess2.RunTargets(g2.InitOp()); err != nil {
		t.Fatal(err)
	}
	if err := saver2.Restore(sess2, path); err != nil {
		t.Fatal(err)
	}
	bv, err := sess2.Fetch1(nil, base.Value())
	if err != nil {
		t.Fatal(err)
	}
	if bv.FloatAt(0) != 5 || bv.FloatAt(1) != 6 {
		t.Errorf("fine-tune restore = %v", bv)
	}
	hv, err := sess2.Fetch1(nil, head.Value())
	if err != nil {
		t.Fatal(err)
	}
	if hv.FloatAt(0) != 1 {
		t.Errorf("head variable clobbered: %v", hv)
	}
}

func TestQueueRunnerFillsPipeline(t *testing.T) {
	g := tf.NewGraph()
	q := g.FIFOQueue("input", 8, []tf.DType{tf.Float32}, []tf.Shape{{}})
	counter := g.NewVariableFromTensor("counter", tf.Scalar(0))
	next := counter.AssignAdd(g.Const(float32(1)))
	enq := q.Enqueue(next.Output(0))
	deq := q.Dequeue()
	if err := g.Err(); err != nil {
		t.Fatal(err)
	}
	sess, err := tf.NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.RunTargets(g.InitOp()); err != nil {
		t.Fatal(err)
	}
	coord := train.NewCoordinator()
	qr := train.NewQueueRunner(q, enq)
	qr.Start(sess, coord)

	seen := map[float64]bool{}
	for i := 0; i < 20; i++ {
		out, err := sess.Fetch1(nil, deq[0])
		if err != nil {
			t.Fatal(err)
		}
		seen[out.FloatAt(0)] = true
	}
	coord.RequestStop(nil)
	if err := coord.Join(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 20 {
		t.Errorf("dequeued %d distinct values, want 20", len(seen))
	}
}

func TestSyncReplicasAveragesGradients(t *testing.T) {
	testSyncReplicas(t, 4, 0)
}

func TestSyncReplicasWithBackupWorkersDiscardsStale(t *testing.T) {
	testSyncReplicas(t, 3, 2)
}

func testSyncReplicas(t *testing.T, numWorkers, numBackup int) {
	t.Helper()
	g := tf.NewGraph()
	w := g.NewVariableFromTensor("w", tf.Scalar(0))
	// Each worker computes gradient d/dw (w - target)² = 2(w - target)
	// for its own fed target; the synchronous mean drives w toward the
	// mean target.
	target := g.Placeholder("target", tf.Float32, tf.Shape{})
	grad := g.Mul(g.Const(float32(2)), g.Sub(w.Value(), target))
	sr, err := train.NewSyncReplicas(g, &train.GradientDescent{LearningRate: 0.25},
		[]tf.Gradient{{Dense: grad}}, []*tf.Variable{w}, numWorkers, numBackup)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := tf.NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.RunTargets(g.InitOp()); err != nil {
		t.Fatal(err)
	}
	if err := sr.PrimeTokens(sess); err != nil {
		t.Fatal(err)
	}

	const rounds = 30
	total := numWorkers + numBackup
	var wg sync.WaitGroup
	errs := make(chan error, total)
	for wi := 0; wi < total; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			// All workers pull toward the same target: token handoff
			// does not promise round-robin participation (the paper
			// leans on random batches making duplicates benign, §4.4),
			// so per-worker targets would not average deterministically.
			for r := 0; r < rounds; r++ {
				err := sr.WorkerStep(sess, map[tf.Output]*tf.Tensor{target: tf.Scalar(4)})
				if err != nil {
					errs <- err
					return
				}
			}
		}(wi)
	}
	chiefErr := make(chan error, 1)
	go func() {
		for r := 0; r < rounds; r++ {
			if err := sr.ChiefStep(sess); err != nil {
				chiefErr <- err
				return
			}
		}
		chiefErr <- nil
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := <-chiefErr; err != nil {
		t.Fatal(err)
	}
	stepT, err := sess.Fetch1(nil, sr.GlobalStep().Value())
	if err != nil {
		t.Fatal(err)
	}
	if stepT.IntAt(0) != rounds {
		t.Errorf("global step = %v, want %d", stepT, rounds)
	}
	wv, err := sess.Fetch1(nil, w.Value())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wv.FloatAt(0)-4) > 0.05 {
		t.Errorf("after sync training w = %g, want ≈ 4", wv.FloatAt(0))
	}
}

func TestSyncReplicasAggregationIsExactMean(t *testing.T) {
	// Deterministic version: enqueue the four workers' gradients
	// sequentially, run one chief step, and check the applied update is
	// exactly the mean (Figure 4b: updates accumulate in a queue and are
	// applied atomically).
	g := tf.NewGraph()
	w := g.NewVariableFromTensor("w", tf.Scalar(10))
	gradIn := g.Placeholder("grad_in", tf.Float32, tf.Shape{})
	sr, err := train.NewSyncReplicas(g, &train.GradientDescent{LearningRate: 1},
		[]tf.Gradient{{Dense: gradIn}}, []*tf.Variable{w}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := tf.NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.RunTargets(g.InitOp()); err != nil {
		t.Fatal(err)
	}
	if err := sr.PrimeTokens(sess); err != nil {
		t.Fatal(err)
	}
	for _, gv := range []float32{1, 2, 3, 6} { // mean 3
		if err := sr.WorkerStep(sess, map[tf.Output]*tf.Tensor{gradIn: tf.Scalar(gv)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sr.ChiefStep(sess); err != nil {
		t.Fatal(err)
	}
	wv, err := sess.Fetch1(nil, w.Value())
	if err != nil {
		t.Fatal(err)
	}
	if wv.FloatAt(0) != 7 { // 10 − 1·mean(1,2,3,6) = 7
		t.Errorf("after one aggregated step w = %g, want 7", wv.FloatAt(0))
	}
}

func TestCoordinatorCollectsFirstError(t *testing.T) {
	c := train.NewCoordinator()
	c.Go(func() error { return os.ErrNotExist })
	c.Go(func() error { <-c.StopChan(); return nil })
	if err := c.Join(); err != os.ErrNotExist {
		t.Errorf("Join = %v, want ErrNotExist", err)
	}
	if !c.ShouldStop() {
		t.Error("coordinator should report stopped")
	}
}

// TestOptimizerTrainsWhileLoopModel trains through control flow (§4.1): the
// prediction iterates s ← tanh(w·s) for a fixed trip count inside tf.While,
// the loss is (s_T − target)², and plain SGD must reduce it monotonically
// enough to converge. This exercises the whole loop-gradient pipeline —
// trip-count counter, stack-saved intermediates, invariant accumulation —
// under a real optimizer update.
func TestOptimizerTrainsWhileLoopModel(t *testing.T) {
	g := tf.NewGraph()
	w := g.NewVariableFromTensor("w", tf.FromFloat64s(tf.Shape{}, []float64{0.2}))
	x := g.Const(float64(0.9))
	target := g.Const(float64(0.6))
	wVal := w.Value() // read outside the loop; captured as a loop invariant
	outs := g.While(
		[]tf.Output{g.Const(int32(0)), x}, nil,
		func(vars, _ []tf.Output) tf.Output { return g.Less(vars[0], g.Const(int32(4))) },
		func(vars, _ []tf.Output) []tf.Output {
			return []tf.Output{
				g.Add(vars[0], g.Const(int32(1))),
				g.Tanh(g.Mul(wVal, vars[1])),
			}
		},
	)
	loss := g.Square(g.Sub(outs[1], target))
	opt := &train.GradientDescent{LearningRate: 0.5}
	trainOp, err := opt.Minimize(g, loss, []*tf.Variable{w})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := tf.NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.RunTargets(g.InitOp()); err != nil {
		t.Fatal(err)
	}
	var first, last float64
	const steps = 12
	for i := 0; i < steps; i++ {
		out, err := sess.Run(nil, []tf.Output{loss}, trainOp)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = out[0].FloatAt(0)
		}
		last = out[0].FloatAt(0)
	}
	if !(last < first/10) {
		t.Errorf("while-loop model did not train: loss %g → %g over %d steps", first, last, steps)
	}
	if last > 1e-3 {
		t.Errorf("while-loop model loss after %d steps = %g, want <= 1e-3", steps, last)
	}
}
