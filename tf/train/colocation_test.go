package train_test

import (
	"testing"

	"repro/internal/device"
	"repro/internal/placement"
	"repro/tf"
	"repro/tf/train"
)

// TestOptimizerSlotsColocateWithVariable verifies that optimizer state is
// pinned next to the variable it adapts (§3.3, §4.1): with the parameter on
// a PS task, the Momentum velocity slot must be placed on the same task
// even though nothing else constrains it.
func TestOptimizerSlotsColocateWithVariable(t *testing.T) {
	g := tf.NewGraph()
	ps := g.WithDevice("/job:ps/task:1")
	loss, w := quadraticOn(t, ps)
	opt := &train.Momentum{LearningRate: 0.1, Decay: 0.9}
	if _, err := opt.Minimize(g, loss, []*tf.Variable{w}); err != nil {
		t.Fatal(err)
	}
	g.Must()

	slot := g.Raw().ByName(w.Name() + "/momentum")
	if slot == nil {
		t.Fatal("momentum slot variable not found")
	}
	hints := slot.Colocation()
	if len(hints) == 0 || hints[0] != w.Name() {
		t.Fatalf("slot colocation hints = %v, want [%s]", hints, w.Name())
	}

	// The placer lands the slot on the variable's task.
	cluster := make([]device.Spec, 2)
	for i, name := range []string{"/job:ps/task:0/device:CPU:0", "/job:ps/task:1/device:CPU:0"} {
		spec, err := device.ParseSpec(name)
		if err != nil {
			t.Fatal(err)
		}
		cluster[i] = spec
	}
	asg, err := placement.Place(g.Raw(), nil, cluster, cluster[0])
	if err != nil {
		t.Fatal(err)
	}
	want := "/job:ps/task:1/device:CPU:0"
	if asg[slot.ID()].String() != want {
		t.Errorf("slot placed on %v, want %s", asg[slot.ID()], want)
	}
	if asg[w.Node().ID()].String() != want {
		t.Errorf("variable placed on %v, want %s", asg[w.Node().ID()], want)
	}
}

// quadraticOn mirrors quadratic but builds through the given (possibly
// device-scoped) view.
func quadraticOn(t *testing.T, g *tf.Graph) (tf.Output, *tf.Variable) {
	t.Helper()
	x := g.Const(tf.FromFloat32s(tf.Shape{4, 2}, []float32{
		1, 0,
		0, 1,
		1, 1,
		2, 1,
	}))
	y := g.Const(tf.FromFloat32s(tf.Shape{4, 1}, []float32{2, -3, -1, 1}))
	w := g.NewVariableFromTensor("w", tf.NewTensor(tf.Float32, tf.Shape{2, 1}))
	pred := g.MatMul(x, w.Value())
	loss := g.Mean(g.Square(g.Sub(pred, y)), nil, false)
	return loss, w
}
