package train

// PR 10 test battery: gradients are pushed to the owning PS shard and
// applied there (PS-apply). The contract is behavioral equivalence with the
// legacy chief-apply path — same per-step losses, same parameters — while
// the traffic shape changes: the chief's RunGraph feeds stop carrying
// gradient tensors (they ride PushGradients instead), and sparse embedding
// gradients push only the gathered rows.

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/distributed"
	"repro/tf"
)

// runSyncReplicated drives a 2-job in-process cluster through `rounds`
// synchronous rounds with every worker participating, returning each
// worker's per-round losses and the merged PS variable state.
func runSyncReplicated(t *testing.T, opts ReplicatedOptions, model ModelFn,
	feeds func(wi, s int) map[string]*tf.Tensor, psTasks, workers, rounds int,
) ([][]float64, map[string]*tf.Tensor) {
	t.Helper()
	spec := distributed.ClusterSpec{
		"ps":     make([]string, psTasks),
		"worker": make([]string, workers),
	}
	cluster := distributed.NewInProcCluster(spec)
	opts.Cluster = spec
	opts.Resolver = cluster.Resolver()
	opts.Sync = true
	r, err := NewReplicated(opts, model)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Init(); err != nil {
		t.Fatal(err)
	}
	losses := make([][]float64, workers)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for wi := 0; wi < workers; wi++ {
		losses[wi] = make([]float64, rounds)
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for s := 0; s < rounds; s++ {
				loss, err := r.TrainStep(wi, feeds(wi, s))
				if err != nil {
					errCh <- fmt.Errorf("worker %d round %d: %w", wi, s, err)
					return
				}
				losses[wi][s] = loss
			}
		}(wi)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if step, err := r.GlobalStep(); err != nil || step != int64(rounds) {
		t.Fatalf("global step = %d, %v; want %d", step, err, rounds)
	}
	state := map[string]*tf.Tensor{}
	for i := 0; i < psTasks; i++ {
		task := distributed.TaskName("ps", i)
		for name, v := range cluster.Workers[task].Device().Resources().SnapshotVariables() {
			state[name] = v
		}
	}
	return losses, state
}

// TestPSApplyModeSelection pins when the shard-apply path engages: sync
// training with a rule-expressible optimizer, unless the caller forces
// ChiefApply. Optimizers without a serializable update rule keep the
// legacy chief path.
func TestPSApplyModeSelection(t *testing.T) {
	build := func(opts ReplicatedOptions) *Replicated {
		t.Helper()
		spec := distributed.ClusterSpec{"ps": make([]string, 1), "worker": make([]string, 1)}
		cluster := distributed.NewInProcCluster(spec)
		opts.Cluster = spec
		opts.Resolver = cluster.Resolver()
		r, err := NewReplicated(opts, repModel)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(r.Close)
		return r
	}
	if r := build(ReplicatedOptions{Sync: true, Optimizer: &GradientDescent{LearningRate: 0.1}}); !r.psApply {
		t.Error("sync SGD should apply on the PS shards")
	}
	if r := build(ReplicatedOptions{Sync: true, ChiefApply: true, Optimizer: &GradientDescent{LearningRate: 0.1}}); r.psApply {
		t.Error("ChiefApply must force the legacy chief path")
	}
	if r := build(ReplicatedOptions{Sync: true, Optimizer: &Adam{LearningRate: 0.1}}); r.psApply {
		t.Error("Adam has no serializable update rule; it must use chief apply")
	}
	if r := build(ReplicatedOptions{Optimizer: &GradientDescent{LearningRate: 0.1}}); r.psApply {
		t.Error("async training does not use the push-apply path")
	}
}

// TestPSApplySyncMatchesChiefApply is the PR 10 equivalence bar: for every
// rule-expressible optimizer, applying on the PS shard must reproduce the
// chief-apply losses and parameters — the PS-side apply engine mirrors the
// graph kernels' float32 rounding, so the trajectories agree step for step.
func TestPSApplySyncMatchesChiefApply(t *testing.T) {
	const (
		rounds    = 12
		tolerance = 1e-6
	)
	feeds := func(wi, s int) map[string]*tf.Tensor { return repFeeds(int64(wi*1000 + s)) }
	for _, tc := range []struct {
		name string
		opt  func() Optimizer
	}{
		{"sgd", func() Optimizer { return &GradientDescent{LearningRate: 0.1} }},
		{"momentum", func() Optimizer { return &Momentum{LearningRate: 0.02, Decay: 0.9} }},
		{"adagrad", func() Optimizer { return &Adagrad{LearningRate: 0.5} }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			chiefLosses, chiefState := runSyncReplicated(t,
				ReplicatedOptions{Optimizer: tc.opt(), ChiefApply: true}, repModel, feeds, 2, 2, rounds)
			psLosses, psState := runSyncReplicated(t,
				ReplicatedOptions{Optimizer: tc.opt()}, repModel, feeds, 2, 2, rounds)
			for wi := range chiefLosses {
				for s := range chiefLosses[wi] {
					want, got := chiefLosses[wi][s], psLosses[wi][s]
					if diff := math.Abs(got - want); diff > tolerance*math.Max(1, math.Abs(want)) {
						t.Errorf("worker %d round %d: ps-apply loss %.9f, chief-apply %.9f", wi, s, got, want)
					}
				}
			}
			for name, want := range chiefState {
				got := psState[name]
				if got == nil {
					t.Errorf("ps-apply lost variable %q", name)
					continue
				}
				for i := 0; i < want.NumElements(); i++ {
					if diff := math.Abs(got.FloatAt(i) - want.FloatAt(i)); diff > tolerance {
						t.Errorf("%s[%d]: ps-apply %.9f, chief-apply %.9f", name, i, got.FloatAt(i), want.FloatAt(i))
					}
				}
			}
		})
	}
}

const (
	embVocab = 8
	embDim   = 4
	embBatch = 3
)

func embInitial() *tf.Tensor {
	init := tf.NewTensor(tf.Float32, tf.Shape{embVocab, embDim})
	for i := 0; i < init.NumElements(); i++ {
		init.SetFloat(i, float64(i%7)*0.25-0.5)
	}
	return init
}

// embModel gathers a few embedding rows, so the table's gradient is sparse
// (indices, values) — the shape of traffic §4.2 optimizes.
func embModel(rb *ReplicaGraph) (*Model, error) {
	idx := rb.Placeholder("idx", tf.Int32, tf.Shape{embBatch})
	emb := rb.Variable("emb", embInitial())
	rows := rb.Gather(emb.Value(), idx)
	loss := rb.Mean(rb.Square(rows), nil, false)
	return &Model{Loss: loss, Inputs: map[string]tf.Output{"idx": idx}}, nil
}

func embFeeds(wi, s int) map[string]*tf.Tensor {
	v := []int32{
		int32((wi + s) % embVocab),
		int32((wi*3 + s*2 + 1) % embVocab),
		int32((s*5 + 2) % embVocab),
	}
	return map[string]*tf.Tensor{"idx": tf.FromInt32s(tf.Shape{embBatch}, v)}
}

// TestPSApplySyncMatchesChiefApplySparse: sparse pushes (row indices +
// values, no densify) must land on the same parameters the chief-apply
// path's densified means produce.
func TestPSApplySyncMatchesChiefApplySparse(t *testing.T) {
	const (
		rounds    = 10
		tolerance = 1e-6
	)
	for _, tc := range []struct {
		name string
		opt  func() Optimizer
	}{
		{"sgd", func() Optimizer { return &GradientDescent{LearningRate: 0.1} }},
		{"adagrad", func() Optimizer { return &Adagrad{LearningRate: 0.2} }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			chiefLosses, chiefState := runSyncReplicated(t,
				ReplicatedOptions{Optimizer: tc.opt(), ChiefApply: true}, embModel, embFeeds, 2, 2, rounds)
			psLosses, psState := runSyncReplicated(t,
				ReplicatedOptions{Optimizer: tc.opt()}, embModel, embFeeds, 2, 2, rounds)
			for wi := range chiefLosses {
				for s := range chiefLosses[wi] {
					want, got := chiefLosses[wi][s], psLosses[wi][s]
					if diff := math.Abs(got - want); diff > tolerance*math.Max(1, math.Abs(want)) {
						t.Errorf("worker %d round %d: ps-apply loss %.9f, chief-apply %.9f", wi, s, got, want)
					}
				}
			}
			want, got := chiefState["emb"], psState["emb"]
			if want == nil || got == nil {
				t.Fatalf("embedding table missing: chief=%v ps=%v", want != nil, got != nil)
			}
			for i := 0; i < want.NumElements(); i++ {
				if diff := math.Abs(got.FloatAt(i) - want.FloatAt(i)); diff > tolerance {
					t.Errorf("emb[%d]: ps-apply %.9f, chief-apply %.9f", i, got.FloatAt(i), want.FloatAt(i))
				}
			}
		})
	}
}

// trafficCounter tallies gradient-shaped tensors crossing the master's
// transports, distinguishing RunGraph feeds (the legacy chief-apply
// vehicle) from PushGradients payloads (the PR 10 vehicle).
type trafficCounter struct {
	mu sync.Mutex
	// markFeeds counts RunGraph feed tensors with exactly markElems
	// elements — sized to match only the big variable's gradient.
	markElems int
	markFeeds int
	// Per-variable push payload sizes.
	pushDense  map[string]int // total dense elements pushed
	pushValues map[string]int // total sparse value elements pushed
	pushCalls  int
}

func (c *trafficCounter) resolver(inner distributed.Resolver) distributed.Resolver {
	return func(task string) (distributed.Transport, error) {
		tr, err := inner(task)
		if err != nil {
			return nil, err
		}
		return &countingTransport{Transport: tr, c: c}, nil
	}
}

type countingTransport struct {
	distributed.Transport
	c *trafficCounter
}

func (t *countingTransport) RunGraph(req *distributed.RunGraphReq) (*distributed.RunGraphResp, error) {
	t.c.mu.Lock()
	for _, f := range req.Feeds {
		if f != nil && f.NumElements() == t.c.markElems {
			t.c.markFeeds++
		}
	}
	t.c.mu.Unlock()
	return t.Transport.RunGraph(req)
}

func (t *countingTransport) PushGradients(req *distributed.PushGradientsReq, abort <-chan struct{}) (*distributed.PushGradientsResp, error) {
	t.c.mu.Lock()
	t.c.pushCalls++
	for _, gp := range req.Grads {
		if gp.Dense != nil {
			t.c.pushDense[gp.Name] += gp.Dense.NumElements()
		}
		if gp.Values != nil {
			t.c.pushValues[gp.Name] += gp.Values.NumElements()
		}
	}
	t.c.mu.Unlock()
	return t.Transport.PushGradients(req, abort)
}

const bigDim = 64

// bigModel makes the weight gradient uniquely identifiable by size: w's
// gradient has exactly bigDim elements, while the input feeds (8×64, 8×1)
// and the bias gradient (1) have other sizes.
func bigModel(rb *ReplicaGraph) (*Model, error) {
	x := rb.Placeholder("x", tf.Float32, tf.Shape{repBatch, bigDim})
	y := rb.Placeholder("y", tf.Float32, tf.Shape{repBatch, 1})
	w := rb.Variable("w", tf.NewTensor(tf.Float32, tf.Shape{bigDim, 1}))
	b := rb.Variable("b", tf.NewTensor(tf.Float32, tf.Shape{1}))
	pred := rb.Add(rb.MatMul(x, w.Value()), b.Value())
	loss := rb.Mean(rb.Square(rb.Sub(pred, y)), nil, false)
	return &Model{Loss: loss, Inputs: map[string]tf.Output{"x": x, "y": y}}, nil
}

func bigFeeds(wi, s int) map[string]*tf.Tensor {
	xs := tf.NewTensor(tf.Float32, tf.Shape{repBatch, bigDim})
	ys := tf.NewTensor(tf.Float32, tf.Shape{repBatch, 1})
	for i := 0; i < xs.NumElements(); i++ {
		xs.SetFloat(i, float64((i+wi*31+s*7)%11)*0.1-0.5)
	}
	for i := 0; i < ys.NumElements(); i++ {
		ys.SetFloat(i, float64((i+wi*13+s*3)%5)*0.2-0.4)
	}
	return map[string]*tf.Tensor{"x": xs, "y": ys}
}

// runCountedSync is runSyncReplicated with the master's transports wrapped
// by a trafficCounter.
func runCountedSync(t *testing.T, opts ReplicatedOptions, model ModelFn,
	feeds func(wi, s int) map[string]*tf.Tensor, markElems, workers, rounds int,
) *trafficCounter {
	t.Helper()
	c := &trafficCounter{markElems: markElems, pushDense: map[string]int{}, pushValues: map[string]int{}}
	spec := distributed.ClusterSpec{"ps": make([]string, 1), "worker": make([]string, workers)}
	cluster := distributed.NewInProcCluster(spec)
	opts.Cluster = spec
	opts.Resolver = c.resolver(cluster.Resolver())
	opts.Sync = true
	r, err := NewReplicated(opts, model)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Init(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for s := 0; s < rounds; s++ {
				if _, err := r.TrainStep(wi, feeds(wi, s)); err != nil {
					errCh <- fmt.Errorf("worker %d round %d: %w", wi, s, err)
					return
				}
			}
		}(wi)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	return c
}

// TestPSApplyChiefTrafficCarriesNoGradients pins the traffic claim of PR
// 10: in chief-apply mode every round ships the weight's mean gradient as a
// RunGraph feed; in PS-apply mode no RunGraph feed is gradient-shaped —
// gradients reach the shard only inside PushGradients.
func TestPSApplyChiefTrafficCarriesNoGradients(t *testing.T) {
	const (
		workers = 2
		rounds  = 3
	)
	opt := func() Optimizer { return &GradientDescent{LearningRate: 0.05} }

	chief := runCountedSync(t, ReplicatedOptions{Optimizer: opt(), ChiefApply: true},
		bigModel, bigFeeds, bigDim, workers, rounds)
	if chief.markFeeds != rounds {
		t.Errorf("chief-apply fed the weight gradient %d times over %d rounds; the legacy path feeds it once per round",
			chief.markFeeds, rounds)
	}
	if chief.pushCalls != 0 {
		t.Errorf("chief-apply issued %d PushGradients calls; want none", chief.pushCalls)
	}

	ps := runCountedSync(t, ReplicatedOptions{Optimizer: opt()},
		bigModel, bigFeeds, bigDim, workers, rounds)
	if ps.markFeeds != 0 {
		t.Errorf("ps-apply fed %d gradient-shaped tensors through RunGraph; gradients must ride PushGradients only",
			ps.markFeeds)
	}
	if want := workers * rounds * bigDim; ps.pushDense["w"] != want {
		t.Errorf("ps-apply pushed %d dense elements for w, want %d (every worker, every round)",
			ps.pushDense["w"], want)
	}
}

// TestSparsePushTrafficScalesWithGatheredRows: an embedding push carries
// the gathered rows' values (batch×dim elements), never a vocab-sized dense
// tensor — per-step traffic scales with the lookups, not the table (§4.2).
func TestSparsePushTrafficScalesWithGatheredRows(t *testing.T) {
	const (
		bigVocab = 128
		workers  = 2
		rounds   = 4
	)
	model := func(rb *ReplicaGraph) (*Model, error) {
		idx := rb.Placeholder("idx", tf.Int32, tf.Shape{embBatch})
		init := tf.NewTensor(tf.Float32, tf.Shape{bigVocab, embDim})
		for i := 0; i < init.NumElements(); i++ {
			init.SetFloat(i, float64(i%13)*0.1-0.6)
		}
		emb := rb.Variable("emb", init)
		rows := rb.Gather(emb.Value(), idx)
		loss := rb.Mean(rb.Square(rows), nil, false)
		return &Model{Loss: loss, Inputs: map[string]tf.Output{"idx": idx}}, nil
	}
	feeds := func(wi, s int) map[string]*tf.Tensor {
		v := []int32{
			int32((wi*17 + s) % bigVocab),
			int32((wi + s*29 + 3) % bigVocab),
			int32((s*41 + 7) % bigVocab),
		}
		return map[string]*tf.Tensor{"idx": tf.FromInt32s(tf.Shape{embBatch}, v)}
	}
	c := runCountedSync(t, ReplicatedOptions{Optimizer: &GradientDescent{LearningRate: 0.1}},
		model, feeds, bigVocab*embDim, workers, rounds)
	if c.pushDense["emb"] != 0 {
		t.Errorf("embedding gradient was densified on the wire: %d dense elements pushed", c.pushDense["emb"])
	}
	if want := workers * rounds * embBatch * embDim; c.pushValues["emb"] != want {
		t.Errorf("pushed %d sparse value elements for emb, want %d (= workers×rounds×batch×dim; vocab×dim would be %d per push)",
			c.pushValues["emb"], want, bigVocab*embDim)
	}
	if c.markFeeds != 0 {
		t.Errorf("%d vocab-sized tensors crossed RunGraph feeds; embedding traffic must scale with the gathered rows", c.markFeeds)
	}
}
