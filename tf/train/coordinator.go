package train

import (
	"errors"
	"strings"
	"sync"

	"repro/tf"
)

// Coordinator manages the lifetime of background goroutines (queue runners,
// worker loops): it fans a stop signal out to all of them and collects the
// first error. It is the client-side glue for the concurrent input
// pipelines of §3.2/Figure 1.
type Coordinator struct {
	mu      sync.Mutex
	stopCh  chan struct{}
	stopped bool
	err     error
	wg      sync.WaitGroup
}

// NewCoordinator creates a running coordinator.
func NewCoordinator() *Coordinator {
	return &Coordinator{stopCh: make(chan struct{})}
}

// StopChan returns the channel closed when the coordinator stops.
func (c *Coordinator) StopChan() <-chan struct{} { return c.stopCh }

// ShouldStop reports whether a stop was requested.
func (c *Coordinator) ShouldStop() bool {
	select {
	case <-c.stopCh:
		return true
	default:
		return false
	}
}

// RequestStop asks all managed goroutines to stop; the first non-nil error
// is retained.
func (c *Coordinator) RequestStop(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil && c.err == nil && !isBenignShutdown(err) {
		c.err = err
	}
	if !c.stopped {
		c.stopped = true
		close(c.stopCh)
	}
}

// isBenignShutdown recognizes the errors produced by draining a closed
// queue, which are the normal end-of-input signal, not failures.
func isBenignShutdown(err error) bool {
	msg := err.Error()
	return strings.Contains(msg, "queue: closed") || strings.Contains(msg, "aborted")
}

// Go runs fn on a managed goroutine; a returned error stops the
// coordinator.
func (c *Coordinator) Go(fn func() error) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		if err := fn(); err != nil {
			c.RequestStop(err)
		}
	}()
}

// Join waits for every managed goroutine and returns the retained error.
func (c *Coordinator) Join() error {
	c.wg.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// QueueRunner repeatedly runs enqueue operations on goroutines, closing the
// queue when stopped — the standard way to drive a preprocessing pipeline
// that fills an input queue (Figure 1: concurrent preprocessing steps
// feeding the training subgraph through a queue).
type QueueRunner struct {
	queue      *tf.Queue
	enqueueOps []*tf.Operation
}

// NewQueueRunner creates a runner that drives each enqueue op on its own
// goroutine.
func NewQueueRunner(q *tf.Queue, enqueueOps ...*tf.Operation) *QueueRunner {
	return &QueueRunner{queue: q, enqueueOps: enqueueOps}
}

// Start launches the enqueue loops under the coordinator.
func (qr *QueueRunner) Start(sess *tf.Session, c *Coordinator) {
	var once sync.Once
	closeQueue := func() {
		once.Do(func() {
			// Close via the client API so pending dequeues drain.
			_ = sess.RunTargets(qr.queue.Close())
		})
	}
	for _, op := range qr.enqueueOps {
		op := op
		c.Go(func() error {
			defer closeQueue()
			for !c.ShouldStop() {
				if err := sess.RunTargets(op); err != nil {
					if isBenignShutdown(err) {
						return nil
					}
					return err
				}
			}
			return nil
		})
	}
}

// ErrStopped is returned by helpers when the coordinator stopped first.
var ErrStopped = errors.New("train: coordinator stopped")
