package train

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/distributed"
	"repro/tf"
)

// This file makes replicated training elastic: where Replicated is built
// once against a frozen task set, ElasticReplicated follows a
// DynamicCluster through task failures, replacements and scale changes
// mid-training. The mechanism is generations: each generation is a
// Replicated trainer over the cluster's live slots at some membership
// version. When membership drifts, the next TrainStep rebuilds —
// cheaply (Invalidate + redial) when tasks were only replaced at their
// slots, fully (new Replicated over the new live sets, with shard state
// migrated through checkpoints) when the live sets changed. Callers see
// one long-lived trainer whose steps ride through the churn.

// ElasticOptions configures an elastic replicated trainer.
type ElasticOptions struct {
	// Cluster is the dynamic membership table the trainer follows.
	Cluster *distributed.DynamicCluster
	// WrapResolver optionally wraps the cluster's dynamic resolver —
	// this is where the chaos transport hooks in. nil uses the resolver
	// as is.
	WrapResolver func(distributed.Resolver) distributed.Resolver

	// PSJob and WorkerJob default to "ps" and "worker".
	PSJob     string
	WorkerJob string
	// Optimizer applies gradients; it is required.
	Optimizer Optimizer
	// Sync selects synchronous coordination; Backups is the backup-worker
	// count b, recomputed per generation as min(b, live workers − 1) so
	// the m-of-n barrier always tracks live membership (§4.4).
	Sync    bool
	Backups int

	// CheckpointPrefix enables fault tolerance and shard migration; the
	// fields mirror ReplicatedOptions.
	CheckpointPrefix string
	CheckpointEvery  int
	KeepCheckpoints  int
	StepRetries      int

	// HeartbeatInterval > 0 starts a failure detector over the cluster so
	// silent task deaths turn into membership changes without operator
	// intervention; HeartbeatTimeout defaults per FailureDetectorOptions.
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration

	// RebuildWait bounds how long a TrainStep keeps retrying through
	// failures and rebuilds before giving up (default 30s). It is the
	// dual of the paper's observation that recovery is routine: a step
	// only fails once the cluster stayed untrainable this long.
	RebuildWait time.Duration
}

func (o *ElasticOptions) withDefaults() error {
	if o.Cluster == nil {
		return fmt.Errorf("train: elastic training needs a dynamic cluster")
	}
	if o.Optimizer == nil {
		return fmt.Errorf("train: elastic training needs an optimizer")
	}
	if o.PSJob == "" {
		o.PSJob = "ps"
	}
	if o.WorkerJob == "" {
		o.WorkerJob = "worker"
	}
	if o.RebuildWait <= 0 {
		o.RebuildWait = 30 * time.Second
	}
	return nil
}

// generation is one Replicated trainer pinned to a membership version.
type generation struct {
	num     int64
	version int64
	rep     *Replicated
	workers []int
	psTasks []int
}

// ElasticReplicated is a data-parallel trainer over a dynamic cluster.
// TrainStep transparently retries across task failures and membership
// changes; Close stops the current generation and the failure detector.
type ElasticReplicated struct {
	opts     ElasticOptions
	model    ModelFn
	resolver distributed.Resolver
	detector *distributed.FailureDetector

	mu       sync.Mutex
	cond     *sync.Cond
	gen      *generation
	building bool
	closed   bool

	restoreMu    sync.Mutex
	restoredStep int64 // last merged-restore step; -1 when none happened
}

// NewElastic builds the first generation over the cluster's current live
// tasks and, when heartbeats are enabled, starts the failure detector.
func NewElastic(opts ElasticOptions, model ModelFn) (*ElasticReplicated, error) {
	if err := opts.withDefaults(); err != nil {
		return nil, err
	}
	resolver := opts.Cluster.Resolver()
	if opts.WrapResolver != nil {
		resolver = opts.WrapResolver(resolver)
	}
	e := &ElasticReplicated{opts: opts, model: model, resolver: resolver, restoredStep: -1}
	e.cond = sync.NewCond(&e.mu)
	if opts.HeartbeatInterval > 0 {
		e.detector = distributed.NewFailureDetector(opts.Cluster, distributed.FailureDetectorOptions{
			Interval: opts.HeartbeatInterval,
			Timeout:  opts.HeartbeatTimeout,
		})
	}
	gen, err := e.build(nil)
	if err != nil {
		if e.detector != nil {
			e.detector.Close()
		}
		return nil, err
	}
	e.gen = gen
	return e, nil
}

// current returns a generation matching the cluster's membership version,
// rebuilding when it drifted. Exactly one caller builds; the rest wait.
func (e *ElasticReplicated) current() (*generation, error) {
	e.mu.Lock()
	for {
		if e.closed {
			e.mu.Unlock()
			return nil, fmt.Errorf("train: elastic trainer closed")
		}
		if e.building {
			e.cond.Wait()
			continue
		}
		g := e.gen
		if g != nil && g.version == e.opts.Cluster.Version() {
			e.mu.Unlock()
			return g, nil
		}
		e.building = true
		e.mu.Unlock()

		gen, err := e.build(g)

		e.mu.Lock()
		e.building = false
		if err == nil {
			e.gen = gen
		}
		e.cond.Broadcast()
		if err != nil {
			e.mu.Unlock()
			return nil, err
		}
		// Loop: membership may have moved again while building.
	}
}

// build produces a generation for the cluster's current membership. With
// identical live sets — tasks replaced in place at new addresses — the old
// trainer survives: its masters just drop cached registrations and the
// dynamic resolver redials (replacement PS tasks restored their own slot
// checkpoints on start). Changed live sets force a full rebuild.
func (e *ElasticReplicated) build(old *generation) (*generation, error) {
	c := e.opts.Cluster
	deadline := time.Now().Add(e.opts.RebuildWait)
	watch, cancel := c.Watch()
	defer cancel()
	for {
		version := c.Version()
		workers := c.LiveTasks(e.opts.WorkerJob)
		ps := c.LiveTasks(e.opts.PSJob)
		if len(workers) > 0 && len(ps) > 0 {
			if old != nil && sameTasks(old.workers, workers) && sameTasks(old.psTasks, ps) {
				old.rep.Invalidate()
				return &generation{num: old.num + 1, version: version, rep: old.rep,
					workers: workers, psTasks: ps}, nil
			}
			return e.rebuild(old, workers, ps, version)
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, fmt.Errorf("train: cluster has no live %q+%q tasks after %v",
				e.opts.WorkerJob, e.opts.PSJob, e.opts.RebuildWait)
		}
		wait := 20 * time.Millisecond
		if remain < wait {
			wait = remain
		}
		select {
		case <-watch:
		case <-time.After(wait):
		}
	}
}

// rebuild replaces the trainer: checkpoint what the old generation can
// still reach, close it, build a Replicated over the new live sets, and —
// when the PS set changed, so the round-robin variable→shard mapping moved
// — migrate state by restoring every variable from the freshest shard
// checkpoint that holds it.
func (e *ElasticReplicated) rebuild(old *generation, workers, ps []int, version int64) (*generation, error) {
	var num int64 = 1
	psChanged := false
	if old != nil {
		num = old.num + 1
		psChanged = !sameTasks(old.psTasks, ps)
		if e.opts.CheckpointPrefix != "" {
			// Best effort: dead shards fail their save, surviving shards pin
			// their post-churn state so no applied step is lost to migration.
			_ = old.rep.SaveNow()
		}
		old.rep.Close()
	}
	backups := e.opts.Backups
	if e.opts.Sync && backups >= len(workers) {
		backups = len(workers) - 1
	}
	rep, err := NewReplicated(ReplicatedOptions{
		Cluster:          e.opts.Cluster.Snapshot(),
		Resolver:         e.resolver,
		PSJob:            e.opts.PSJob,
		WorkerJob:        e.opts.WorkerJob,
		WorkerTasks:      workers,
		PSTasks:          ps,
		Optimizer:        e.opts.Optimizer,
		Sync:             e.opts.Sync,
		Backups:          backups,
		CheckpointPrefix: e.opts.CheckpointPrefix,
		CheckpointEvery:  e.opts.CheckpointEvery,
		KeepCheckpoints:  e.opts.KeepCheckpoints,
		StepRetries:      e.opts.StepRetries,
	}, e.model)
	if err != nil {
		return nil, err
	}
	if _, err := rep.Init(); err != nil {
		rep.Close()
		return nil, fmt.Errorf("train: initializing generation %d: %w", num, err)
	}
	if old != nil && psChanged && e.opts.CheckpointPrefix != "" {
		values, step, err := mergedCheckpoint(e.opts.CheckpointPrefix, e.opts.PSJob, e.opts.Cluster.Slots(e.opts.PSJob))
		if err != nil {
			rep.Close()
			return nil, err
		}
		if len(values) > 0 {
			if _, err := rep.RestoreVariables(values); err != nil {
				rep.Close()
				return nil, fmt.Errorf("train: migrating shards into generation %d: %w", num, err)
			}
			e.restoreMu.Lock()
			e.restoredStep = step
			e.restoreMu.Unlock()
		}
	}
	return &generation{num: num, version: version, rep: rep, workers: workers, psTasks: ps}, nil
}

// mergedCheckpoint reads every PS slot's newest shard checkpoint and keeps,
// per variable, the copy from the highest-step file. The per-variable merge
// is what makes migration correct across remappings: after a scale-down
// every variable was checkpointed by its new owner at a later step than the
// stale file of the slot it left behind.
func mergedCheckpoint(prefix, psJob string, slots int) (map[string]*tf.Tensor, int64, error) {
	values := map[string]*tf.Tensor{}
	from := map[string]int64{}
	var newest int64 = -1
	for idx := 0; idx < slots; idx++ {
		shard := fmt.Sprintf("%s.%s-%d", prefix, psJob, idx)
		path, step, err := checkpoint.LatestStep(shard)
		if err != nil {
			return nil, 0, fmt.Errorf("train: scanning shard checkpoints %s: %w", shard, err)
		}
		if path == "" {
			continue
		}
		tensors, err := checkpoint.Read(path)
		if err != nil {
			return nil, 0, fmt.Errorf("train: reading shard checkpoint %s: %w", path, err)
		}
		for name, t := range tensors {
			if prev, ok := from[name]; !ok || step > prev {
				values[name] = t
				from[name] = step
			}
		}
		if step > newest {
			newest = step
		}
	}
	return values, newest, nil
}

// sameTasks reports whether two sorted task-index sets are identical.
func sameTasks(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// elasticRetryable: errors worth riding out with a rebuild — transport
// unavailability (a task died or is partitioned) and steps cut short
// because their generation was closed under them mid-rebuild.
func elasticRetryable(err error) bool {
	return distributed.IsRetryable(err) || strings.Contains(err.Error(), "replicated trainer closed")
}

// TrainStep runs one training step, riding through failures: a retryable
// error waits for membership to change (the failure detector's verdict, a
// replacement's join) and retries on whatever generation is then current,
// up to RebuildWait. wi indexes the current generation's replicas modulo
// their count, so a fixed worker-loop id stays valid as replicas come and
// go.
func (e *ElasticReplicated) TrainStep(wi int, feeds map[string]*tf.Tensor) (float64, error) {
	deadline := time.Now().Add(e.opts.RebuildWait)
	for {
		gen, err := e.current()
		if err != nil {
			return 0, err
		}
		loss, err := gen.rep.TrainStep(wi%gen.rep.NumReplicas(), feeds)
		if err == nil {
			return loss, nil
		}
		if !elasticRetryable(err) {
			return 0, err
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("train: step did not recover within %v: %w", e.opts.RebuildWait, err)
		}
		e.waitChange(gen.version, 20*time.Millisecond)
	}
}

// waitChange blocks until the cluster version moves past seen, or at most
// max — long enough to yield to the failure detector, short enough that a
// retry whose fault was transient (a chaos drop) is not stalled behind a
// membership change that never comes.
func (e *ElasticReplicated) waitChange(seen int64, max time.Duration) {
	watch, cancel := e.opts.Cluster.Watch()
	defer cancel()
	if e.opts.Cluster.Version() != seen {
		return
	}
	select {
	case <-watch:
	case <-time.After(max):
	}
}

// GlobalStep reads the shared step counter through the current generation.
func (e *ElasticReplicated) GlobalStep() (int64, error) {
	gen, err := e.current()
	if err != nil {
		return 0, err
	}
	return gen.rep.GlobalStep()
}

// SaveNow checkpoints every live PS shard at the current global step.
func (e *ElasticReplicated) SaveNow() error {
	gen, err := e.current()
	if err != nil {
		return err
	}
	return gen.rep.SaveNow()
}

// NumWorkers returns the current generation's replica count.
func (e *ElasticReplicated) NumWorkers() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.gen == nil {
		return 0
	}
	return e.gen.rep.NumReplicas()
}

// Generation returns the current generation number (1 for the first build;
// it advances on every membership-driven rebuild or re-registration).
func (e *ElasticReplicated) Generation() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.gen == nil {
		return 0
	}
	return e.gen.num
}

// RestoredStep returns the checkpoint step of the last shard migration
// (merged restore), or -1 when none has happened.
func (e *ElasticReplicated) RestoredStep() int64 {
	e.restoreMu.Lock()
	defer e.restoreMu.Unlock()
	return e.restoredStep
}

// Close stops the failure detector and the current generation. PS state
// outlives the trainer, as with Replicated.
func (e *ElasticReplicated) Close() {
	if e.detector != nil {
		e.detector.Close()
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	for e.building {
		e.cond.Wait()
	}
	gen := e.gen
	e.cond.Broadcast()
	e.mu.Unlock()
	if gen != nil {
		gen.rep.Close()
	}
}
