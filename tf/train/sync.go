package train

import (
	"fmt"

	"repro/tf"
)

// SyncReplicas implements the synchronous coordination of §4.4 (Figure
// 4b/4c) with the queue-based construction the paper describes: a gradient
// queue accumulates per-worker updates so they can be applied atomically,
// and a token queue acts as the barrier that releases workers only after
// the aggregated update is in place, so every worker reads the same
// parameter version.
//
// With NumBackup > 0 the scheme becomes Figure 4c: NumWorkers+NumBackup
// replicas compute gradients but only the first NumWorkers fresh updates
// per step are aggregated; later (stale) updates are discarded by their
// step tag, mirroring "the aggregation takes the first m of n updates
// produced".
type SyncReplicas struct {
	g          *tf.Graph
	NumWorkers int // m: gradients aggregated per step
	NumBackup  int // b: extra proactive replicas (Figure 4c)

	globalStep *tf.Variable
	gradQueue  *tf.Queue
	tokenQueue *tf.Queue

	// Worker side.
	enqueueGrads *tf.Operation
	dequeueToken *tf.Operation
	stepValue    tf.Output

	// Chief side.
	dequeueOne []tf.Output
	gradFeeds  []tf.Output
	applyOp    *tf.Operation
	bumpStep   *tf.Operation
	tokenFill  *tf.Operation
	gradShapes []tf.Shape
	gradDTypes []tf.DType

	// Sparse gradients bypass the queue: each rides a shared accumulator
	// variable colocated with its parameter (ScatterAdd of just the
	// touched rows, §4.2), which the chief reads, means and zeroes per
	// step. denseSlot maps each variable index to its position in the
	// queue tuple, or −1 for sparse gradients.
	denseSlot []int
	accReads  []tf.Output   // accumulator value per variable (sparse only)
	accReset  *tf.Operation // zeroes every accumulator after the apply
}

// NewSyncReplicas builds the coordination graph. grads are the worker's
// computed gradients for vars; opt applies the aggregated mean. Dense
// gradients travel through the gradient queue; sparse gradients accumulate
// into shared ScatterAdd accumulators without densifying, which requires
// numBackup == 0 (a stale backup contribution cannot be discarded once
// added to a shared accumulator — the queue's step tags cannot help it).
func NewSyncReplicas(g *tf.Graph, opt Optimizer, grads []tf.Gradient, vars []*tf.Variable,
	numWorkers, numBackup int) (*SyncReplicas, error) {
	if numWorkers < 1 {
		return nil, fmt.Errorf("train: SyncReplicas needs at least one worker")
	}
	if len(grads) != len(vars) {
		return nil, fmt.Errorf("train: %d gradients for %d variables", len(grads), len(vars))
	}

	s := &SyncReplicas{g: g, NumWorkers: numWorkers, NumBackup: numBackup}
	s.globalStep = g.NewVariableFromTensor("sync/global_step", tf.ScalarInt(0))
	s.stepValue = s.globalStep.Value()

	dense := make([]tf.Output, 0, len(grads))
	s.denseSlot = make([]int, len(grads))
	s.accReads = make([]tf.Output, len(grads))
	var scatters, accZeros []*tf.Operation
	s.gradDTypes = make([]tf.DType, 0, len(grads)+1)
	s.gradShapes = make([]tf.Shape, 0, len(grads)+1)
	// Component 0 carries the worker's view of the global step so the
	// chief can discard stale backup-worker updates.
	s.gradDTypes = append(s.gradDTypes, tf.Int32)
	s.gradShapes = append(s.gradShapes, tf.Shape{})
	for i, gr := range grads {
		if sp := gr.Sparse; sp != nil && !gr.IsZero() {
			if numBackup > 0 {
				return nil, fmt.Errorf("train: SyncReplicas cannot combine sparse gradients with backup workers; densify the gradient or set numBackup to 0")
			}
			s.denseSlot[i] = -1
			gc := g.ColocateWith(vars[i].Ref().Op())
			acc := gc.NewVariable(fmt.Sprintf("sync/acc_%d", i),
				gc.Const(mustFill(vars[i].DType(), vars[i].Shape(), 0)))
			scatters = append(scatters, acc.ScatterAdd(sp.Indices, sp.Values))
			s.accReads[i] = acc.Value()
			accZeros = append(accZeros,
				acc.Assign(gc.Const(mustFill(vars[i].DType(), vars[i].Shape(), 0))))
			continue
		}
		d, err := g.DensifyGradient(gr)
		if err != nil {
			return nil, err
		}
		s.denseSlot[i] = len(dense)
		dense = append(dense, d)
		s.gradDTypes = append(s.gradDTypes, vars[i].DType())
		s.gradShapes = append(s.gradShapes, vars[i].Shape())
	}

	total := numWorkers + numBackup
	s.gradQueue = g.FIFOQueue("sync/grads", 2*total+2, s.gradDTypes, s.gradShapes)
	s.tokenQueue = g.FIFOQueue("sync/tokens", 2*total+2, []tf.DType{tf.Int32}, []tf.Shape{{}})

	// Worker ops: tag gradients with the current step and enqueue; block
	// on the token queue before the next step (the barrier of Fig. 4b).
	// The step tag carries control dependencies on the sparse scatters, so
	// a worker's accumulator contribution is in place before its tuple can
	// be dequeued — by the time the chief holds m fresh tuples, the
	// accumulators hold exactly m contributions.
	stepComp := s.stepValue
	if len(scatters) > 0 {
		stepComp = g.IdentityWithControl(s.stepValue, scatters...)
	}
	if len(accZeros) > 0 {
		s.accReset = g.Group("sync/acc_reset", accZeros...)
	}
	comps := append([]tf.Output{stepComp}, dense...)
	s.enqueueGrads = s.gradQueue.Enqueue(comps...)
	tok := s.tokenQueue.Dequeue()
	s.dequeueToken = g.Group("sync/wait_token", tok[0].Op())

	// Chief ops: dequeue one tagged gradient tuple; apply fed means.
	s.dequeueOne = s.gradQueue.Dequeue()
	s.gradFeeds = make([]tf.Output, len(vars))
	applyGrads := make([]tf.Gradient, len(vars))
	for i, v := range vars {
		ph := g.Placeholder(fmt.Sprintf("sync/mean_grad_%d", i), v.DType(), v.Shape())
		s.gradFeeds[i] = ph
		applyGrads[i] = tf.Gradient{Dense: ph}
	}
	applyOp, err := opt.ApplyGradients(g, applyGrads, vars)
	if err != nil {
		return nil, err
	}
	s.applyOp = applyOp
	s.bumpStep = s.globalStep.AssignAdd(g.Const(int32(1)))
	s.tokenFill = s.tokenQueue.Enqueue(s.stepValue)
	return s, g.Err()
}

// GlobalStep returns the shared step counter variable.
func (s *SyncReplicas) GlobalStep() *tf.Variable { return s.globalStep }

// WorkerStep runs one synchronous worker step: it blocks on the token queue
// (the barrier guaranteeing all workers read the same parameter version,
// Figure 4b), then computes and enqueues this worker's tagged gradients.
// PrimeTokens must release the first round.
func (s *SyncReplicas) WorkerStep(sess *tf.Session, feeds map[tf.Output]*tf.Tensor) error {
	if err := sess.RunTargets(s.dequeueToken); err != nil {
		return err
	}
	_, err := sess.Run(feeds, nil, s.enqueueGrads)
	return err
}

// ChiefStep aggregates the first NumWorkers fresh gradient tuples (stale
// tuples from backup workers of earlier steps are discarded), applies their
// mean, advances the global step, and releases NumWorkers+NumBackup tokens.
func (s *SyncReplicas) ChiefStep(sess *tf.Session) error {
	stepT, err := sess.Fetch1(nil, s.stepValue)
	if err != nil {
		return err
	}
	current := int32(stepT.IntAt(0))

	sums := make([]*tf.Tensor, len(s.gradDTypes)-1)
	fresh := 0
	for fresh < s.NumWorkers {
		tuple, err := sess.Run(nil, s.dequeueOne)
		if err != nil {
			return err
		}
		if int32(tuple[0].IntAt(0)) != current {
			continue // stale update from a backup worker of an earlier step
		}
		for i, t := range tuple[1:] {
			if sums[i] == nil {
				sums[i] = t.Clone()
				continue
			}
			for j := 0; j < t.NumElements(); j++ {
				sums[i].SetFloat(j, sums[i].FloatAt(j)+t.FloatAt(j))
			}
		}
		fresh++
	}
	feeds := make(map[tf.Output]*tf.Tensor, len(s.gradFeeds))
	for i := range s.gradFeeds {
		var t *tf.Tensor
		if slot := s.denseSlot[i]; slot >= 0 {
			t = sums[slot]
		} else {
			// Sparse gradient: the m contributions already sit summed in
			// the shared accumulator (the enqueue's control dependency
			// guarantees each is in place before its tuple was visible).
			at, err := sess.Fetch1(nil, s.accReads[i])
			if err != nil {
				return err
			}
			t = at.Clone()
		}
		for j := 0; j < t.NumElements(); j++ {
			t.SetFloat(j, t.FloatAt(j)/float64(s.NumWorkers))
		}
		feeds[s.gradFeeds[i]] = t
	}
	if _, err := sess.Run(feeds, nil, s.applyOp); err != nil {
		return err
	}
	if s.accReset != nil {
		if err := sess.RunTargets(s.accReset); err != nil {
			return err
		}
	}
	if err := sess.RunTargets(s.bumpStep); err != nil {
		return err
	}
	for i := 0; i < s.NumWorkers+s.NumBackup; i++ {
		if err := sess.RunTargets(s.tokenFill); err != nil {
			return err
		}
	}
	return nil
}

// PrimeTokens releases the first round of tokens so workers can start.
func (s *SyncReplicas) PrimeTokens(sess *tf.Session) error {
	for i := 0; i < s.NumWorkers+s.NumBackup; i++ {
		if err := sess.RunTargets(s.tokenFill); err != nil {
			return err
		}
	}
	return nil
}
