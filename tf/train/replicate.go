package train

import (
	"fmt"
	"sync"

	"repro/internal/distributed"
	"repro/internal/graph"
	"repro/internal/tensor"
	"repro/tf"
)

// This file implements data-parallel replicated training over the real
// distributed runtime (§4.3, §4.4): model parameters are sharded across the
// tasks of a "ps" job, each task of a "worker" job runs its own between-graph
// replica — a private graph and master whose variables alias the shared PS
// state by name — and updates are coordinated either asynchronously (every
// replica applies its own gradients, Figure 4a) or synchronously with backup
// workers (the first m of n replica gradients per step are aggregated and
// applied once, stragglers' stale updates are discarded, Figure 4c).
//
// Fault tolerance is user-level, as in the paper: each master retries steps
// whose task became unreachable (re-registering subgraphs after the task
// returns), PS tasks checkpoint their variable shard every CheckpointEvery
// global steps, and a restarted PS task restores its shard from the newest
// checkpoint before serving again (§4.3).

// ReplicatedOptions configures a replicated trainer.
type ReplicatedOptions struct {
	// Cluster and Resolver name the tasks and locate their transports.
	Cluster  distributed.ClusterSpec
	Resolver distributed.Resolver
	// PSJob and WorkerJob default to "ps" and "worker".
	PSJob     string
	WorkerJob string
	// WorkerTasks and PSTasks select which task indices of each job
	// participate; nil means every task in the cluster spec. The elastic
	// layer passes the live subset of a DynamicCluster's slot table, so a
	// generation can run with holes in it — a left task keeps its slot
	// index (and its shard checkpoints), survivors keep theirs.
	WorkerTasks []int
	PSTasks     []int
	// Optimizer applies gradients; it is required.
	Optimizer Optimizer
	// Sync selects synchronous coordination (Figure 4b/4c); Backups is the
	// number of backup workers b: with n worker tasks, each synchronous
	// step aggregates the first m = n−b gradients (§4.4).
	Sync    bool
	Backups int
	// ChiefApply forces the legacy sync topology: workers return gradients
	// to the chief, which aggregates and applies them through its apply
	// graph. By default a sync trainer whose optimizer implements
	// UpdateRuler pushes gradients to the owning PS shard instead, where
	// the update rule is applied next to the variables (PS-side apply);
	// the chief then never carries gradient traffic. Optimizers without a
	// serializable rule always use chief apply.
	ChiefApply bool
	// CheckpointPrefix enables fault tolerance: every CheckpointEvery
	// global steps each PS task writes its shard to
	// "<prefix>.<job>-<task>-<step>" and keeps KeepCheckpoints files.
	CheckpointPrefix string
	CheckpointEvery  int // default 10 when a prefix is set
	KeepCheckpoints  int // default 3
	// StepRetries is each master's retry budget for failed steps
	// (default 3).
	StepRetries int
}

func (o *ReplicatedOptions) withDefaults() error {
	if o.PSJob == "" {
		o.PSJob = "ps"
	}
	if o.WorkerJob == "" {
		o.WorkerJob = "worker"
	}
	if o.Optimizer == nil {
		return fmt.Errorf("train: replicated training needs an optimizer")
	}
	if len(o.Cluster[o.PSJob]) == 0 {
		return fmt.Errorf("train: cluster has no %q tasks", o.PSJob)
	}
	if len(o.Cluster[o.WorkerJob]) == 0 {
		return fmt.Errorf("train: cluster has no %q tasks", o.WorkerJob)
	}
	var err error
	if o.WorkerTasks, err = defaultTasks(o.WorkerTasks, len(o.Cluster[o.WorkerJob]), o.WorkerJob); err != nil {
		return err
	}
	if o.PSTasks, err = defaultTasks(o.PSTasks, len(o.Cluster[o.PSJob]), o.PSJob); err != nil {
		return err
	}
	if o.Backups < 0 || (o.Sync && o.Backups >= len(o.WorkerTasks)) {
		return fmt.Errorf("train: %d backup workers leave no gradients to aggregate", o.Backups)
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 10
	}
	if o.KeepCheckpoints <= 0 {
		o.KeepCheckpoints = 3
	}
	if o.StepRetries == 0 {
		o.StepRetries = 3
	}
	return nil
}

// defaultTasks fills and validates a job's participating task indices.
func defaultTasks(tasks []int, slots int, job string) ([]int, error) {
	if tasks == nil {
		tasks = make([]int, slots)
		for i := range tasks {
			tasks[i] = i
		}
		return tasks, nil
	}
	if len(tasks) == 0 {
		return nil, fmt.Errorf("train: no %q tasks selected", job)
	}
	seen := map[int]bool{}
	for _, idx := range tasks {
		if idx < 0 || idx >= slots || seen[idx] {
			return nil, fmt.Errorf("train: invalid %q task selection %v over %d slots", job, tasks, slots)
		}
		seen[idx] = true
	}
	return tasks, nil
}

// ReplicaGraph is the graph handle a ModelFn builds into: compute ops land
// on the replica's worker task (the embedded view carries the device
// scope), while Variable shards parameters round-robin across the PS tasks
// — the device-placement policy of the reference system's
// replica_device_setter. The round-robin order is the variable creation
// order, so a deterministic ModelFn yields the same name→shard mapping in
// every replica, which is what makes same-named variables alias the same
// PS state.
type ReplicaGraph struct {
	*tf.Graph // worker-task-scoped view
	root      *tf.Graph
	psTasks   []string
	vars      []*tf.Variable
	varTasks  []string // PS task owning each variable, by vars index
	nextPS    int
}

// Variable declares a model parameter on the next PS shard.
func (rb *ReplicaGraph) Variable(name string, initial *tf.Tensor) *tf.Variable {
	dev := rb.psTasks[rb.nextPS%len(rb.psTasks)]
	rb.nextPS++
	v := rb.root.WithDevice(dev).NewVariableFromTensor(name, initial)
	rb.vars = append(rb.vars, v)
	rb.varTasks = append(rb.varTasks, dev)
	return v
}

// Model is what a ModelFn returns: the scalar training loss and the named
// input placeholders TrainStep feeds.
type Model struct {
	Loss   tf.Output
	Inputs map[string]tf.Output
}

// ModelFn builds one replica's model. It runs once per worker task and must
// be deterministic (same variables, same order) so the replicas agree on
// parameter names and shards.
type ModelFn func(rb *ReplicaGraph) (*Model, error)

// globalStepName is the shared step counter's variable name; it lives on PS
// task 0 and keys checkpoint files (§4.3).
const globalStepName = "global_step"

type replica struct {
	g      *tf.Graph
	master *distributed.Master
	model  *Model
	vars   []*tf.Variable

	lossEP graph.Endpoint
	stepEP graph.Endpoint

	// Async: optimizer update + global-step bump, run by every TrainStep.
	trainTargets []*graph.Node
	// Sync: the replica only computes gradients; the chief (or the PS
	// shards) applies them. Sparse gradients occupy two endpoints
	// (indices, values) — see gradPlan.
	gradEPs []graph.Endpoint
}

// gradSlot records how one variable's gradient travels in the fetched
// tuple: one dense tensor, or an (indices, values) pair for sparse
// gradients that must reach the shard without densifying.
type gradSlot struct {
	sparse bool
}

type syncPush struct {
	round int64
	grads []*tf.Tensor
}

// Replicated is a data-parallel trainer: one between-graph replica per
// worker task over shared PS state. Worker loops call TrainStep
// concurrently; in sync mode an internal chief goroutine aggregates
// gradients and releases the barrier.
type Replicated struct {
	opts ReplicatedOptions
	reps []*replica
	m    int // sync: gradients aggregated per step (n − Backups)

	// PS-side apply (sync mode, UpdateRuler optimizers): workers push
	// gradients to the owning shard, which aggregates and applies them
	// next to the variables. rule is the serialized update rule; varTask
	// maps each variable index to its PS task; gradPlan describes the
	// fetched gradient tuple's layout (shared by the chief aggregation
	// path, which uses it to keep embedding gradients sparse on the wire).
	psApply  bool
	rule     distributed.UpdateRule
	varTask  []string
	gradPlan []gradSlot
	psTasks  []string

	// Chief-side apply graph (sync mode), built on replica 0.
	applyFeeds   []tf.Output
	applyTargets []*graph.Node
	// Per-initializer probes on the chief graph: Init re-runs exactly the
	// initializers whose variable is uninitialized (a shard lost with no
	// checkpoint) without clobbering healthy shards.
	probeEPs  []graph.Endpoint
	initNodes []*graph.Node
	// Restore graph on the chief: per-variable placeholder → Assign, keyed
	// by variable name, for feeding merged checkpoint state back into the
	// (possibly re-sharded) PS tasks after a membership change.
	restoreFeeds map[string]tf.Output
	restoreOps   map[string]*graph.Node

	mu         sync.Mutex
	cond       *sync.Cond
	round      int64 // completed synchronous rounds
	err        error // first terminal error; broadcast to all workers
	closed     bool
	quitClosed bool
	dead       map[int]bool // sync replicas whose steps fail terminally

	gradCh chan syncPush
	quit   chan struct{}
	wg     sync.WaitGroup

	saveMu    sync.Mutex
	lastSaved int64
	saveErr   error
}

// NewReplicated builds one replica per worker task (and the chief's apply
// graph in sync mode). Call Init before the first TrainStep.
func NewReplicated(opts ReplicatedOptions, model ModelFn) (*Replicated, error) {
	if err := opts.withDefaults(); err != nil {
		return nil, err
	}
	numWorkers := len(opts.WorkerTasks)
	psTasks := make([]string, len(opts.PSTasks))
	for i, idx := range opts.PSTasks {
		psTasks[i] = distributed.TaskName(opts.PSJob, idx)
	}
	r := &Replicated{
		opts:         opts,
		m:            numWorkers - opts.Backups,
		psTasks:      psTasks,
		gradCh:       make(chan syncPush, 4*numWorkers),
		quit:         make(chan struct{}),
		dead:         map[int]bool{},
		restoreFeeds: map[string]tf.Output{},
		restoreOps:   map[string]*graph.Node{},
	}
	r.cond = sync.NewCond(&r.mu)
	if opts.Sync && !opts.ChiefApply {
		if ur, ok := opts.Optimizer.(UpdateRuler); ok {
			if rule, ok := ur.UpdateRule(); ok {
				r.rule, r.psApply = rule, true
			}
		}
	}

	for wi := 0; wi < numWorkers; wi++ {
		g := tf.NewGraph()
		wg := g.WithDevice(distributed.TaskName(opts.WorkerJob, opts.WorkerTasks[wi]))
		rb := &ReplicaGraph{Graph: wg, root: g, psTasks: psTasks}
		m, err := model(rb)
		if err != nil {
			return nil, fmt.Errorf("train: replica %d model: %w", wi, err)
		}
		if m == nil || !m.Loss.Valid() {
			return nil, fmt.Errorf("train: replica %d model has no loss", wi)
		}
		psView := g.WithDevice(psTasks[0])
		gs := psView.NewVariableFromTensor(globalStepName, tf.ScalarInt(0))
		rep := &replica{g: g, model: m, vars: rb.vars, lossEP: m.Loss.Unwrap(), stepEP: gs.Value().Unwrap()}

		var slotVars []*tf.Variable
		if opts.Sync {
			// The replica computes gradients — dense tensors, or sparse
			// (indices, values) pairs left undensified so embedding
			// updates can land as scatter ops. Applying them is the
			// shards' job (PS-apply) or the chief's (legacy), so every
			// worker reads the same parameter version per round
			// (Figure 4b).
			eps, plan, err := replicaGradients(wg, m.Loss, rb.vars)
			if err != nil {
				return nil, fmt.Errorf("train: replica %d gradients: %w", wi, err)
			}
			rep.gradEPs = eps
			if wi == 0 {
				r.gradPlan = plan
				r.varTask = rb.varTasks
			}
			if wi == 0 && r.psApply {
				// PS-apply: no apply graph — the shards run the update
				// rule themselves. Declare the rule's slot variables next
				// to their parameters so initialization, probes, restores
				// and checkpoint merges cover the PS-resident optimizer
				// state the shards will update.
				if r.rule.SlotName() != "" {
					for _, v := range rb.vars {
						slotVars = append(slotVars, slotVar(g, v, r.rule.SlotName(), r.rule.SlotFill()))
					}
				}
			}
			if wi == 0 && !r.psApply {
				// Chief apply graph: placeholders carry the aggregated
				// means into the optimizer update. The update math is
				// scoped to the PS (Figure 4b: the parameter servers
				// apply the aggregated update), so applying a round
				// touches no worker task — a dead worker covered by a
				// backup cannot take the aggregator down with it.
				applyGrads := make([]tf.Gradient, len(rb.vars))
				r.applyFeeds = make([]tf.Output, len(rb.vars))
				for i, v := range rb.vars {
					ph := g.Placeholder(fmt.Sprintf("replicate/mean_grad_%d", i), v.DType(), v.Shape())
					r.applyFeeds[i] = ph
					applyGrads[i] = tf.Gradient{Dense: ph}
				}
				applyOp, err := opts.Optimizer.ApplyGradients(psView, applyGrads, rb.vars)
				if err != nil {
					return nil, err
				}
				bump := bumpAfter(psView, gs, applyOp)
				r.applyTargets = []*graph.Node{applyOp.Node(), bump.Node()}
			}
		} else {
			trainOp, err := opts.Optimizer.Minimize(wg, m.Loss, rb.vars)
			if err != nil {
				return nil, fmt.Errorf("train: replica %d optimizer: %w", wi, err)
			}
			bump := bumpAfter(psView, gs, trainOp)
			rep.trainTargets = []*graph.Node{trainOp.Node(), bump.Node()}
		}
		if wi == 0 {
			// One probe per registered initializer — model variables,
			// optimizer slots, the global step — colocated with its
			// variable via the reference edge, so each runs on the shard
			// whose health it reports.
			for i, n := range g.InitNodes() {
				probe := g.BuildOp("IsVariableInitialized",
					fmt.Sprintf("replicate/initialized_%d", i), nil, g.WrapOutput(n.Input(0)))
				r.probeEPs = append(r.probeEPs, probe.Output(0).Unwrap())
				r.initNodes = append(r.initNodes, n)
			}
			// Restore graph: one placeholder+Assign per parameter, per
			// declared optimizer slot (PS-apply mode) and the global
			// step, each assign colocated with its variable via the
			// reference edge. The elastic layer feeds these to migrate
			// checkpointed shards onto a changed variable→shard mapping —
			// the assign lands on whichever task owns the variable *now*.
			restoreList := append(append([]*tf.Variable{}, rb.vars...), slotVars...)
			for i, v := range append(restoreList, gs) {
				ph := g.Placeholder(fmt.Sprintf("replicate/restore_%d", i), v.DType(), v.Shape())
				r.restoreFeeds[v.Name()] = ph
				r.restoreOps[v.Name()] = v.Assign(ph).Node()
			}
		}
		if err := g.Err(); err != nil {
			return nil, fmt.Errorf("train: replica %d graph: %w", wi, err)
		}
		master, err := distributed.NewMaster(g.Raw(), opts.Cluster, opts.Resolver,
			distributed.MasterOptions{StepRetries: opts.StepRetries})
		if err != nil {
			return nil, err
		}
		rep.master = master
		r.reps = append(r.reps, rep)
	}
	return r, nil
}

// bumpAfter increments the global step strictly after the parameter update
// has applied. The ordering matters for step retries (§4.3): a failed
// attempt whose gradients never reached the PS must not advance the
// counter, or the retried step would count (and checkpoint-key) twice.
func bumpAfter(psView *tf.Graph, gs *tf.Variable, update *tf.Operation) *tf.Operation {
	one := psView.IdentityWithControl(psView.Const(int32(1)), update)
	return gs.AssignAdd(one)
}

// replicaGradients builds the per-variable gradient endpoints of loss and
// the plan describing their layout. Dense gradients occupy one endpoint;
// sparse gradients stay sparse — two endpoints (indices, values) — so an
// embedding gradient travels as the rows the step touched, never expanded
// to vocabulary size (§4.2). Zero gradients contribute dense zeros so the
// tuple stays positional (and so stateful rules, e.g. momentum decay,
// still see the variable every round).
func replicaGradients(g *tf.Graph, loss tf.Output, vars []*tf.Variable) ([]graph.Endpoint, []gradSlot, error) {
	xs := make([]tf.Output, len(vars))
	for i, v := range vars {
		xs[i] = v.Value()
	}
	grads, err := g.Gradients([]tf.Output{loss}, xs)
	if err != nil {
		return nil, nil, err
	}
	var eps []graph.Endpoint
	plan := make([]gradSlot, len(grads))
	for i, gr := range grads {
		switch {
		case gr.IsZero():
			eps = append(eps, g.Const(tf.NewTensor(vars[i].DType(), vars[i].Shape())).Unwrap())
		case gr.Sparse != nil:
			plan[i].sparse = true
			eps = append(eps, gr.Sparse.Indices.Unwrap(), gr.Sparse.Values.Unwrap())
		default:
			eps = append(eps, gr.Dense.Unwrap())
		}
	}
	return eps, plan, g.Err()
}

// Init prepares the shared state variable by variable: initialized state —
// left by an earlier client, or restored by restarted tasks from their
// shard checkpoints (§4.3) — is kept untouched, while uninitialized
// variables (a fresh cluster, or a shard lost before its first checkpoint)
// get exactly their own initializers run. In sync mode Init also starts the
// chief aggregator. It returns the global step training resumes from.
func (r *Replicated) Init() (int64, error) {
	chief := r.reps[0]
	probes, err := chief.master.Run(nil, r.probeEPs, nil)
	if err != nil {
		return 0, err
	}
	var missing []*graph.Node
	for i, t := range probes {
		if !t.Bools()[0] {
			missing = append(missing, r.initNodes[i])
		}
	}
	if len(missing) > 0 {
		if _, err := chief.master.Run(nil, nil, missing); err != nil {
			return 0, err
		}
	}
	step, err := r.GlobalStep()
	if err != nil {
		return 0, err
	}
	r.saveMu.Lock()
	r.lastSaved = step
	r.saveMu.Unlock()
	if r.opts.Sync {
		if r.psApply {
			// PS-apply: rounds are absolute (round k produces global step
			// k+1), so start from the restored step. The barrier lives at
			// the shards; no chief aggregator runs.
			r.mu.Lock()
			r.round = step
			r.mu.Unlock()
		} else {
			r.wg.Add(1)
			go r.aggregate()
		}
	}
	return step, nil
}

// GlobalStep reads the shared step counter.
func (r *Replicated) GlobalStep() (int64, error) {
	out, err := r.reps[0].master.Run(nil, []graph.Endpoint{r.reps[0].stepEP}, nil)
	if err != nil {
		return 0, err
	}
	return int64(out[0].IntAt(0)), nil
}

// NumReplicas returns the worker-task count n.
func (r *Replicated) NumReplicas() int { return len(r.reps) }

// Invalidate drops every replica master's cached graph registrations, so
// the next step re-places and re-registers subgraphs against the tasks'
// current transports. The elastic layer calls it when a task is replaced
// at the same slot but a new address.
func (r *Replicated) Invalidate() {
	for _, rep := range r.reps {
		rep.master.Invalidate()
	}
}

// feedMap resolves named feeds against a replica's inputs.
func (rep *replica) feedMap(feeds map[string]*tf.Tensor) (map[graph.Endpoint]*tf.Tensor, error) {
	if len(feeds) == 0 {
		return nil, nil
	}
	out := make(map[graph.Endpoint]*tf.Tensor, len(feeds))
	for name, t := range feeds {
		in, ok := rep.model.Inputs[name]
		if !ok {
			return nil, fmt.Errorf("train: model has no input %q", name)
		}
		out[in.Unwrap()] = t
	}
	return out, nil
}

// TrainStep runs one training step on worker wi's replica and returns the
// replica's loss. Async mode computes and applies gradients in one
// distributed step (Figure 4a). Sync mode computes gradients against the
// current parameter version, hands them to the chief tagged with the
// current round, and blocks until the round completes — which happens as
// soon as m of the n replicas have contributed, so a straggler (or a
// crashed worker) does not hold up the step (Figure 4c); its late gradients
// are discarded as stale.
func (r *Replicated) TrainStep(wi int, feeds map[string]*tf.Tensor) (float64, error) {
	rep := r.reps[wi]
	f, err := rep.feedMap(feeds)
	if err != nil {
		return 0, err
	}

	if !r.opts.Sync {
		// The step counter only needs to come back to the client to key
		// checkpoints; without a prefix, skip the extra cross-task fetch
		// on the hot path.
		fetches := []graph.Endpoint{rep.lossEP}
		if r.opts.CheckpointPrefix != "" {
			fetches = append(fetches, rep.stepEP)
		}
		out, err := rep.master.Run(f, fetches, rep.trainTargets)
		if err != nil {
			return 0, err
		}
		if len(out) > 1 {
			r.maybeSave(int64(out[1].IntAt(0)))
		}
		return out[0].FloatAt(0), nil
	}

	r.mu.Lock()
	round, terr := r.round, r.terminalLocked()
	r.mu.Unlock()
	if terr != nil {
		return 0, terr
	}
	out, err := rep.master.Run(f, append([]graph.Endpoint{rep.lossEP}, rep.gradEPs...), nil)
	if err != nil {
		// The replica's step failed past its retry budget. Backup workers
		// absorb up to Backups failed replicas (§4.4); once fewer than m
		// remain failing-free, no round can ever complete, so fail the
		// trainer instead of leaving the survivors blocked in the barrier
		// forever. The mark is cleared when the replica steps successfully
		// again, so a transient outage on one replica does not combine
		// with a later one elsewhere into a spurious whole-trainer kill.
		r.mu.Lock()
		r.dead[wi] = true
		deadNow := len(r.dead)
		r.mu.Unlock()
		if deadNow > r.opts.Backups {
			r.fail(fmt.Errorf("train: %d replicas failing with %d backup workers (last, replica %d): %w",
				deadNow, r.opts.Backups, wi, err))
		}
		return 0, err
	}
	r.mu.Lock()
	delete(r.dead, wi) // the replica recovered
	r.mu.Unlock()

	if r.psApply {
		// Push the gradients to the owning shards, which aggregate this
		// round m-of-n and apply the update rule next to the variables
		// (§4.4 with the barrier at the shard). The push blocks until the
		// round applies, so returning here IS the barrier.
		applied, perr := r.pushGradients(wi, round, out[1:])
		if perr != nil {
			if terr := r.terminal(); terr != nil {
				return 0, terr
			}
			// A failed push is a failed contribution: account it like a
			// failed replica step so a dead shard (no round can ever
			// complete) fails the trainer instead of wedging the
			// survivors in their pushes.
			r.mu.Lock()
			r.dead[wi] = true
			deadNow := len(r.dead)
			r.mu.Unlock()
			if deadNow > r.opts.Backups {
				r.fail(fmt.Errorf("train: %d replicas failing with %d backup workers (last, replica %d): %w",
					deadNow, r.opts.Backups, wi, perr))
			}
			return 0, perr
		}
		r.mu.Lock()
		if applied+1 > r.round {
			r.round = applied + 1
		}
		r.mu.Unlock()
		r.maybeSave(applied + 1)
		return out[0].FloatAt(0), nil
	}

	select {
	case r.gradCh <- syncPush{round: round, grads: out[1:]}:
	case <-r.quit:
		return 0, r.terminal()
	}
	// Barrier: wait until the chief finishes this round (with or without
	// our contribution).
	r.mu.Lock()
	for r.round <= round && r.terminalLocked() == nil {
		r.cond.Wait()
	}
	terr = r.terminalLocked()
	r.mu.Unlock()
	if terr != nil {
		return 0, terr
	}
	return out[0].FloatAt(0), nil
}

func (r *Replicated) terminalLocked() error {
	if r.err != nil {
		return r.err
	}
	if r.closed {
		return fmt.Errorf("train: replicated trainer closed")
	}
	return nil
}

func (r *Replicated) terminal() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.terminalLocked()
}

// fail records the trainer's terminal error and wakes everyone: workers
// blocked in the barrier (broadcast) and the aggregator or workers blocked
// on the gradient channel (quit).
func (r *Replicated) fail(err error) {
	r.mu.Lock()
	if r.err == nil && err != nil {
		r.err = err
	}
	wasClosed := r.quitClosed
	r.quitClosed = true
	r.cond.Broadcast()
	r.mu.Unlock()
	if !wasClosed {
		close(r.quit)
	}
}

// pushGradients sends one worker's round contribution to every owning PS
// shard in parallel and blocks until each shard has applied the round (or
// acknowledged it as already applied). It returns the highest applied round
// reported by the shards. The shard owning the global step always gets a
// push — StepName tells it to advance the counter — even when no variable
// lives there.
func (r *Replicated) pushGradients(wi int, round int64, grads []*tf.Tensor) (int64, error) {
	origin := distributed.TaskName(r.opts.WorkerJob, r.opts.WorkerTasks[wi])
	reqs := map[string]*distributed.PushGradientsReq{}
	reqFor := func(task string) *distributed.PushGradientsReq {
		req, ok := reqs[task]
		if !ok {
			req = &distributed.PushGradientsReq{
				Origin:   origin,
				Round:    round,
				NumFresh: r.m,
				Rule:     r.rule,
			}
			reqs[task] = req
		}
		return req
	}
	pos := 0
	for i, sl := range r.gradPlan {
		req := reqFor(r.varTask[i])
		name := r.reps[0].vars[i].Name()
		if sl.sparse {
			req.Grads = append(req.Grads, distributed.GradientPush{
				Name: name, Indices: grads[pos], Values: grads[pos+1]})
			pos += 2
		} else {
			req.Grads = append(req.Grads, distributed.GradientPush{Name: name, Dense: grads[pos]})
			pos++
		}
	}
	reqFor(r.psTasks[0]).StepName = globalStepName

	type pushOut struct {
		applied int64
		err     error
	}
	results := make(chan pushOut, len(reqs))
	for task, req := range reqs {
		go func(task string, req *distributed.PushGradientsReq) {
			applied, err := r.pushOne(task, req)
			results <- pushOut{applied, err}
		}(task, req)
	}
	applied, firstErr := int64(-1), error(nil)
	for range reqs {
		po := <-results
		if po.err != nil && firstErr == nil {
			firstErr = po.err
		}
		if po.applied > applied {
			applied = po.applied
		}
	}
	if firstErr != nil {
		return 0, firstErr
	}
	return applied, nil
}

// pushOne delivers one shard's push, retrying transport failures (a chaos
// drop, a redial window after a shard restart) — the push is idempotent per
// (origin, round), so a retry whose original was executed just collects the
// already-applied acknowledgement.
func (r *Replicated) pushOne(task string, req *distributed.PushGradientsReq) (int64, error) {
	var err error
	for attempt := 0; attempt <= r.opts.StepRetries; attempt++ {
		select {
		case <-r.quit:
			return 0, fmt.Errorf("train: replicated trainer stopping")
		default:
		}
		var tr distributed.Transport
		if tr, err = r.opts.Resolver(task); err == nil {
			var resp *distributed.PushGradientsResp
			if resp, err = tr.PushGradients(req, r.quit); err == nil {
				return resp.Round, nil
			}
		}
		if !distributed.IsRetryable(err) {
			break
		}
	}
	return 0, fmt.Errorf("train: pushing gradients to %s: %w", task, err)
}

// aggregate is the chief loop of Figure 4c (legacy chief-apply mode): per
// round, take the first m fresh gradient tuples (dropping tuples computed
// against an older parameter version), apply their mean through the
// optimizer, advance the global step, and release the barrier. Sparse
// gradients arrive as (indices, values) pairs and are folded into the dense
// mean here — the only densification left on this path, and it happens at
// the chief, never in a replica's graph.
func (r *Replicated) aggregate() {
	defer r.wg.Done()
	chief := r.reps[0]
	for {
		r.mu.Lock()
		round := r.round
		r.mu.Unlock()

		var sums []*tf.Tensor
		for fresh := 0; fresh < r.m; {
			var p syncPush
			select {
			case p = <-r.gradCh:
			case <-r.quit:
				return
			}
			if p.round != round {
				continue // stale: a backup worker's gradients from an earlier round
			}
			if sums == nil {
				sums = make([]*tf.Tensor, len(r.gradPlan))
				for i, v := range chief.vars {
					sums[i] = tf.NewTensor(v.DType(), v.Shape())
				}
			}
			if err := r.accumulate(sums, p.grads); err != nil {
				r.fail(err)
				return
			}
			fresh++
		}
		feeds := make(map[graph.Endpoint]*tf.Tensor, len(sums))
		for i, t := range sums {
			for j := 0; j < t.NumElements(); j++ {
				t.SetFloat(j, t.FloatAt(j)/float64(r.m))
			}
			feeds[r.applyFeeds[i].Unwrap()] = t
		}
		out, err := chief.master.Run(feeds, []graph.Endpoint{chief.stepEP}, r.applyTargets)
		if err != nil {
			r.fail(err)
			return
		}
		r.mu.Lock()
		r.round++
		r.cond.Broadcast()
		r.mu.Unlock()
		r.maybeSave(int64(out[0].IntAt(0)))
	}
}

// accumulate folds one gradient tuple into the per-variable sums following
// the plan: dense tensors add elementwise, sparse (indices, values) pairs
// scatter-add into just their rows.
func (r *Replicated) accumulate(sums []*tf.Tensor, grads []*tf.Tensor) error {
	pos := 0
	for i, sl := range r.gradPlan {
		if sl.sparse {
			if err := tensor.ScatterAddInPlace(sums[i], grads[pos], grads[pos+1]); err != nil {
				return fmt.Errorf("train: aggregating sparse gradient %d: %w", i, err)
			}
			pos += 2
			continue
		}
		t := grads[pos]
		pos++
		for j := 0; j < t.NumElements(); j++ {
			sums[i].SetFloat(j, sums[i].FloatAt(j)+t.FloatAt(j))
		}
	}
	return nil
}

// maybeSave checkpoints every PS shard when the global step has advanced
// CheckpointEvery past the last save. Failures do not stop training; they
// surface through SaveErr.
func (r *Replicated) maybeSave(step int64) {
	if r.opts.CheckpointPrefix == "" {
		return
	}
	r.saveMu.Lock()
	if step < r.lastSaved+int64(r.opts.CheckpointEvery) {
		r.saveMu.Unlock()
		return
	}
	r.lastSaved = step
	r.saveMu.Unlock()
	if err := r.saveShards(step); err != nil {
		r.saveMu.Lock()
		r.saveErr = err
		r.saveMu.Unlock()
	}
}

// SaveNow checkpoints every PS shard at the current global step.
func (r *Replicated) SaveNow() error {
	step, err := r.GlobalStep()
	if err != nil {
		return err
	}
	r.saveMu.Lock()
	r.lastSaved = step
	r.saveMu.Unlock()
	return r.saveShards(step)
}

func (r *Replicated) saveShards(step int64) error {
	var firstErr error
	for _, i := range r.opts.PSTasks {
		task := distributed.TaskName(r.opts.PSJob, i)
		var err error
		// A few attempts absorb transient transport faults (a chaos drop,
		// a redial window); SaveShard is idempotent per (prefix, step).
		for attempt := 0; attempt <= r.opts.StepRetries; attempt++ {
			var tr distributed.Transport
			if tr, err = r.opts.Resolver(task); err == nil {
				_, err = tr.SaveShard(&distributed.SaveShardReq{
					Prefix: r.opts.CheckpointPrefix,
					Step:   step,
					Keep:   r.opts.KeepCheckpoints,
				})
			}
			if err == nil || !distributed.IsRetryable(err) {
				break
			}
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("train: checkpointing %s: %w", task, err)
		}
	}
	return firstErr
}

// RestoreVariables assigns checkpointed values to the named variables (and
// the global step, under its own name) through the chief's restore graph.
// The elastic layer uses it to migrate shard state after membership changes
// the variable→shard mapping: each Assign is colocated with its variable,
// so the value lands on whichever PS task owns the variable now. Unknown
// names are skipped (a checkpoint may predate a model change) and the
// count of restored variables is returned.
func (r *Replicated) RestoreVariables(values map[string]*tf.Tensor) (int, error) {
	feeds := map[graph.Endpoint]*tf.Tensor{}
	var targets []*graph.Node
	for name, t := range values {
		ph, ok := r.restoreFeeds[name]
		if !ok {
			continue
		}
		feeds[ph.Unwrap()] = t
		targets = append(targets, r.restoreOps[name])
	}
	if len(targets) == 0 {
		return 0, nil
	}
	if _, err := r.reps[0].master.Run(feeds, nil, targets); err != nil {
		return 0, err
	}
	if r.psApply {
		// Rounds are absolute in PS-apply mode: re-anchor to the restored
		// global step so the next pushes carry the right tag.
		step, err := r.GlobalStep()
		if err != nil {
			return 0, err
		}
		r.mu.Lock()
		r.round = step
		r.mu.Unlock()
	}
	return len(targets), nil
}

// SaveErr returns the most recent background checkpoint failure, if any.
func (r *Replicated) SaveErr() error {
	r.saveMu.Lock()
	defer r.saveMu.Unlock()
	return r.saveErr
}

// Close stops the chief aggregator and unblocks waiting workers. It does
// not touch the PS state, which outlives the trainer (§4.3).
func (r *Replicated) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	wasClosed := r.quitClosed
	r.quitClosed = true
	r.cond.Broadcast()
	r.mu.Unlock()
	if !wasClosed {
		close(r.quit)
	}
	r.wg.Wait()
}
