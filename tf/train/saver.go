package train

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/tf"
)

// Saver builds the user-level checkpointing graph of §4.3: one Save op per
// task connected to every variable, and per-variable Restore→Assign chains.
// Checkpoints are written with no extra synchronization against concurrent
// training steps — acceptable for asynchronous SGD, as the paper argues —
// and retention is a client-side policy.
type Saver struct {
	g        *tf.Graph
	vars     []*tf.Variable
	filename tf.Output
	saveOp   *tf.Operation
	restore  *tf.Operation
	// KeepCheckpoints bounds how many checkpoint files Retain keeps.
	KeepCheckpoints int
}

// NewSaver builds Save/Restore subgraphs over the given variables. The
// checkpoint path is fed through a placeholder so one graph serves every
// step number.
func NewSaver(g *tf.Graph, vars []*tf.Variable) (*Saver, error) {
	if len(vars) == 0 {
		return nil, fmt.Errorf("train: Saver needs at least one variable")
	}
	filename := g.Placeholder("saver/filename", tf.String, tf.Shape{})
	names := make([]string, len(vars))
	values := make([]tf.Output, len(vars))
	for i, v := range vars {
		names[i] = v.Name()
		values[i] = v.Value()
	}
	// Save(filename, names, tensors...) — one Save per task (§4.3).
	ins := append([]tf.Output{filename, g.Const(names)}, values...)
	saveOp := g.BuildOp("Save", "saver/save", nil, ins...)

	// Restore ops feed Assigns; grouping them yields one restore target.
	var assigns []*tf.Operation
	for i, v := range vars {
		restoreOp := g.BuildOp("Restore", "saver/restore_"+names[i], map[string]any{
			"tensor_name": names[i],
			"dt":          v.DType(),
			"shape_hint":  v.Shape(),
		}, filename)
		assigns = append(assigns, v.Assign(restoreOp.Output(0)))
	}
	restore := g.Group("saver/restore_all", assigns...)
	if err := g.Err(); err != nil {
		return nil, err
	}
	return &Saver{
		g: g, vars: vars, filename: filename,
		saveOp: saveOp, restore: restore,
		KeepCheckpoints: 5,
	}, nil
}

// Save writes the current variable values to path.
func (s *Saver) Save(sess *tf.Session, path string) error {
	_, err := sess.Run(map[tf.Output]*tf.Tensor{s.filename: tf.ScalarString(path)}, nil, s.saveOp)
	return err
}

// SaveStep writes prefix-<step> and applies the retention policy.
func (s *Saver) SaveStep(sess *tf.Session, prefix string, step int) (string, error) {
	path := fmt.Sprintf("%s-%d", prefix, step)
	if err := s.Save(sess, path); err != nil {
		return "", err
	}
	if s.KeepCheckpoints > 0 {
		if err := checkpoint.Retention(prefix, s.KeepCheckpoints); err != nil {
			return path, err
		}
	}
	return path, nil
}

// Restore loads variable values from path.
func (s *Saver) Restore(sess *tf.Session, path string) error {
	_, err := sess.Run(map[tf.Output]*tf.Tensor{s.filename: tf.ScalarString(path)}, nil, s.restore)
	return err
}

// RestoreLatest loads the newest prefix-<step> checkpoint, returning false
// when none exists (the caller then runs the initializer instead, §4.3:
// "when the client starts up, it attempts to Restore the latest
// checkpoint").
func (s *Saver) RestoreLatest(sess *tf.Session, prefix string) (bool, error) {
	latest, err := checkpoint.Latest(prefix)
	if err != nil || latest == "" {
		return false, err
	}
	if err := s.Restore(sess, latest); err != nil {
		return false, err
	}
	return true, nil
}
