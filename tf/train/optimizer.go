// Package train implements the training utilities of the paper as
// user-level graph code: optimization algorithms built from Variables and
// primitive operations (§4.1) — the exact capability that required C++
// parameter-server changes in DistBelief — plus checkpointing (§4.3),
// input-pipeline coordination, and the synchronous replication schemes with
// backup workers of §4.4.
package train

import (
	"fmt"

	"repro/internal/distributed"
	"repro/tf"
)

// Optimizer computes parameter updates from gradients. Every implementation
// is pure graph construction: Minimize appends update operations and returns
// the op to run each training step.
type Optimizer interface {
	// Minimize differentiates loss w.r.t. the variables and applies the
	// update rule, returning the grouped training op.
	Minimize(g *tf.Graph, loss tf.Output, vars []*tf.Variable) (*tf.Operation, error)
	// ApplyGradients applies the update rule to precomputed gradients
	// (used by data-parallel replication, which aggregates gradients
	// before applying them, §4.4).
	ApplyGradients(g *tf.Graph, grads []tf.Gradient, vars []*tf.Variable) (*tf.Operation, error)
}

// UpdateRuler is implemented by optimizers whose update rule can be
// serialized and shipped to a parameter-server shard, splitting the
// optimizer into a worker-side gradient computation and a PS-side apply
// (the parameter-server design of the preliminary whitepaper; §4.4 moves
// the sync barrier to the shard with it). Optimizers without a rule —
// Adam, RMSProp, Adadelta — fall back to chief-side apply.
type UpdateRuler interface {
	// UpdateRule returns the serializable spec and true, or ok=false when
	// the optimizer cannot be applied PS-side.
	UpdateRule() (distributed.UpdateRule, bool)
}

// UpdateRule implements UpdateRuler.
func (o *GradientDescent) UpdateRule() (distributed.UpdateRule, bool) {
	return distributed.UpdateRule{Algo: "sgd", LearningRate: o.LearningRate}, true
}

// UpdateRule implements UpdateRuler.
func (o *Momentum) UpdateRule() (distributed.UpdateRule, bool) {
	return distributed.UpdateRule{Algo: "momentum", LearningRate: o.LearningRate, Decay: o.Decay}, true
}

// UpdateRule implements UpdateRuler.
func (o *Adagrad) UpdateRule() (distributed.UpdateRule, bool) {
	accInit := o.InitialAccum
	if accInit <= 0 {
		accInit = 0.1
	}
	return distributed.UpdateRule{Algo: "adagrad", LearningRate: o.LearningRate, InitialAccum: accInit}, true
}

// minimize is the shared Minimize-via-ApplyGradients implementation.
func minimize(o Optimizer, g *tf.Graph, loss tf.Output, vars []*tf.Variable) (*tf.Operation, error) {
	xs := make([]tf.Output, len(vars))
	for i, v := range vars {
		xs[i] = v.Value()
	}
	grads, err := g.Gradients([]tf.Output{loss}, xs)
	if err != nil {
		return nil, err
	}
	return o.ApplyGradients(g, grads, vars)
}

// slotVar creates an accumulator variable shadowing v (e.g. the Momentum
// "velocity"), initialized to a constant fill. The paper uses exactly this
// pattern to show optimizers need no privileged runtime support (§4.1).
// The slot is colocated with v, so in a parameter-server placement the
// optimizer state lives on the same task as the parameters it adapts
// (§3.3, §4.1). The colocation must win over any ambient device scope the
// caller's view carries (e.g. an apply graph scoped to one PS task), so the
// scope is cleared before the hint is attached.
func slotVar(g *tf.Graph, v *tf.Variable, slot string, fill float64) *tf.Variable {
	gc := g.WithDevice("").ColocateWith(v.Ref().Op())
	init := gc.Const(mustFill(v.DType(), v.Shape(), fill))
	return gc.NewVariable(v.Name()+"/"+slot, init)
}

func mustFill(dt tf.DType, shape tf.Shape, fill float64) *tf.Tensor {
	t := tf.NewTensor(dt, shape)
	if fill != 0 {
		for i := 0; i < t.NumElements(); i++ {
			t.SetFloat(i, fill)
		}
	}
	return t
}

// GradientDescent is plain SGD: W ← W − α·∂L/∂W, expressible as a single
// specialized write (§4.1). Sparse gradients apply as ScatterSub updates
// touching only the gathered rows (§4.2).
type GradientDescent struct {
	LearningRate float64
}

// Minimize implements Optimizer.
func (o *GradientDescent) Minimize(g *tf.Graph, loss tf.Output, vars []*tf.Variable) (*tf.Operation, error) {
	return minimize(o, g, loss, vars)
}

// ApplyGradients implements Optimizer.
func (o *GradientDescent) ApplyGradients(g *tf.Graph, grads []tf.Gradient, vars []*tf.Variable) (*tf.Operation, error) {
	if len(grads) != len(vars) {
		return nil, fmt.Errorf("train: %d gradients for %d variables", len(grads), len(vars))
	}
	var updates []*tf.Operation
	for i, grad := range grads {
		v := vars[i]
		switch {
		case grad.IsZero():
			continue
		case grad.Sparse != nil:
			lr := g.Const(scalarOf(v.DType(), o.LearningRate))
			scaled := g.Mul(grad.Sparse.Values, lr)
			updates = append(updates, v.ScatterSub(grad.Sparse.Indices, scaled))
		default:
			lr := g.Const(scalarOf(v.DType(), o.LearningRate))
			updates = append(updates, v.AssignSub(g.Mul(grad.Dense, lr)))
		}
	}
	op := g.Group("train/sgd", updates...)
	return op, g.Err()
}

func scalarOf(dt tf.DType, v float64) *tf.Tensor {
	t := tf.NewTensor(dt, tf.Shape{})
	t.SetFloat(0, v)
	return t
}

// Momentum implements the momentum method (§4.1's motivating example of an
// optimizer that a plain parameter server cannot express as one write):
//
//	vel ← μ·vel + ∂L/∂W;  W ← W − α·vel
type Momentum struct {
	LearningRate float64
	Decay        float64 // μ, typically 0.9
}

// Minimize implements Optimizer.
func (o *Momentum) Minimize(g *tf.Graph, loss tf.Output, vars []*tf.Variable) (*tf.Operation, error) {
	return minimize(o, g, loss, vars)
}

// ApplyGradients implements Optimizer.
func (o *Momentum) ApplyGradients(g *tf.Graph, grads []tf.Gradient, vars []*tf.Variable) (*tf.Operation, error) {
	if len(grads) != len(vars) {
		return nil, fmt.Errorf("train: %d gradients for %d variables", len(grads), len(vars))
	}
	var updates []*tf.Operation
	for i, grad := range grads {
		v := vars[i]
		if grad.IsZero() {
			continue
		}
		vel := slotVar(g, v, "momentum", 0)
		mu := g.Const(scalarOf(v.DType(), o.Decay))
		lr := g.Const(scalarOf(v.DType(), o.LearningRate))
		if sp := grad.Sparse; sp != nil {
			// Sparse ("lazy") path: decay and update only the touched
			// velocity rows, leaving untouched rows — parameters and slot
			// state alike — exactly as they were (§4.2). Like Adagrad's
			// sparse path, repeated indices within one gradient see the
			// same pre-update velocity rows.
			gathered := vel.GatherRows(sp.Indices)
			newVelRows := g.Add(g.Mul(gathered, mu), sp.Values)
			setVel := vel.ScatterAdd(sp.Indices, g.Sub(newVelRows, gathered))
			step := g.Mul(g.IdentityWithControl(newVelRows, setVel), lr)
			updates = append(updates, v.ScatterSub(sp.Indices, step))
			continue
		}
		newVel := g.Add(g.Mul(vel.Value(), mu), grad.Dense)
		setVel := vel.Assign(newVel)
		step := g.Mul(g.IdentityWithControl(newVel, setVel), lr)
		updates = append(updates, v.AssignSub(step))
	}
	op := g.Group("train/momentum", updates...)
	return op, g.Err()
}

// Adagrad adapts per-parameter learning rates by accumulated squared
// gradients. Sparse gradients update only the touched accumulator rows.
type Adagrad struct {
	LearningRate float64
	InitialAccum float64 // typically 0.1
}

// Minimize implements Optimizer.
func (o *Adagrad) Minimize(g *tf.Graph, loss tf.Output, vars []*tf.Variable) (*tf.Operation, error) {
	return minimize(o, g, loss, vars)
}

// ApplyGradients implements Optimizer.
func (o *Adagrad) ApplyGradients(g *tf.Graph, grads []tf.Gradient, vars []*tf.Variable) (*tf.Operation, error) {
	if len(grads) != len(vars) {
		return nil, fmt.Errorf("train: %d gradients for %d variables", len(grads), len(vars))
	}
	accInit := o.InitialAccum
	if accInit <= 0 {
		accInit = 0.1
	}
	var updates []*tf.Operation
	for i, grad := range grads {
		v := vars[i]
		if grad.IsZero() {
			continue
		}
		acc := slotVar(g, v, "adagrad", accInit)
		lr := g.Const(scalarOf(v.DType(), o.LearningRate))
		if sp := grad.Sparse; sp != nil {
			// Sparse path: accumulate g² into the touched rows, then
			// scatter the scaled update (§4.2).
			sq := g.Square(sp.Values)
			accUp := acc.ScatterAdd(sp.Indices, sq)
			accRows := g.IdentityWithControl(acc.GatherRows(sp.Indices), accUp)
			step := g.Div(g.Mul(sp.Values, lr), g.Sqrt(accRows))
			updates = append(updates, v.ScatterSub(sp.Indices, step))
			continue
		}
		newAcc := g.Add(acc.Value(), g.Square(grad.Dense))
		setAcc := acc.Assign(newAcc)
		step := g.Div(g.Mul(grad.Dense, lr), g.Sqrt(g.IdentityWithControl(newAcc, setAcc)))
		updates = append(updates, v.AssignSub(step))
	}
	op := g.Group("train/adagrad", updates...)
	return op, g.Err()
}

// RMSProp keeps an exponentially decayed mean of squared gradients.
type RMSProp struct {
	LearningRate float64
	Decay        float64 // typically 0.9
	Epsilon      float64 // typically 1e-8
}

// Minimize implements Optimizer.
func (o *RMSProp) Minimize(g *tf.Graph, loss tf.Output, vars []*tf.Variable) (*tf.Operation, error) {
	return minimize(o, g, loss, vars)
}

// ApplyGradients implements Optimizer.
func (o *RMSProp) ApplyGradients(g *tf.Graph, grads []tf.Gradient, vars []*tf.Variable) (*tf.Operation, error) {
	if len(grads) != len(vars) {
		return nil, fmt.Errorf("train: %d gradients for %d variables", len(grads), len(vars))
	}
	eps := o.Epsilon
	if eps <= 0 {
		eps = 1e-8
	}
	var updates []*tf.Operation
	for i, grad := range grads {
		v := vars[i]
		if grad.IsZero() {
			continue
		}
		dense, err := g.DensifyGradient(grad)
		if err != nil {
			return nil, err
		}
		ms := slotVar(g, v, "rms", 0)
		decay := g.Const(scalarOf(v.DType(), o.Decay))
		oneMinus := g.Const(scalarOf(v.DType(), 1-o.Decay))
		newMS := g.Add(g.Mul(ms.Value(), decay), g.Mul(g.Square(dense), oneMinus))
		setMS := ms.Assign(newMS)
		lr := g.Const(scalarOf(v.DType(), o.LearningRate))
		denom := g.Sqrt(g.Add(g.IdentityWithControl(newMS, setMS), g.Const(scalarOf(v.DType(), eps))))
		updates = append(updates, v.AssignSub(g.Div(g.Mul(dense, lr), denom)))
	}
	op := g.Group("train/rmsprop", updates...)
	return op, g.Err()
}

// Adadelta is RMSProp with a second accumulator of squared updates,
// removing the global learning rate's units.
type Adadelta struct {
	LearningRate float64 // typically 1.0
	Rho          float64 // typically 0.95
	Epsilon      float64 // typically 1e-6
}

// Minimize implements Optimizer.
func (o *Adadelta) Minimize(g *tf.Graph, loss tf.Output, vars []*tf.Variable) (*tf.Operation, error) {
	return minimize(o, g, loss, vars)
}

// ApplyGradients implements Optimizer.
func (o *Adadelta) ApplyGradients(g *tf.Graph, grads []tf.Gradient, vars []*tf.Variable) (*tf.Operation, error) {
	if len(grads) != len(vars) {
		return nil, fmt.Errorf("train: %d gradients for %d variables", len(grads), len(vars))
	}
	eps := o.Epsilon
	if eps <= 0 {
		eps = 1e-6
	}
	lrv := o.LearningRate
	if lrv == 0 {
		lrv = 1
	}
	var updates []*tf.Operation
	for i, grad := range grads {
		v := vars[i]
		if grad.IsZero() {
			continue
		}
		dense, err := g.DensifyGradient(grad)
		if err != nil {
			return nil, err
		}
		accG := slotVar(g, v, "adadelta_g", 0)
		accX := slotVar(g, v, "adadelta_x", 0)
		rho := g.Const(scalarOf(v.DType(), o.Rho))
		oneMinus := g.Const(scalarOf(v.DType(), 1-o.Rho))
		epsC := g.Const(scalarOf(v.DType(), eps))

		newAccG := g.Add(g.Mul(accG.Value(), rho), g.Mul(g.Square(dense), oneMinus))
		setAccG := accG.Assign(newAccG)
		rms := func(x tf.Output) tf.Output { return g.Sqrt(g.Add(x, epsC)) }
		update := g.Div(g.Mul(rms(accX.Value()), dense), rms(g.IdentityWithControl(newAccG, setAccG)))
		newAccX := g.Add(g.Mul(accX.Value(), rho), g.Mul(g.Square(update), oneMinus))
		setAccX := accX.Assign(newAccX)
		lr := g.Const(scalarOf(v.DType(), lrv))
		step := g.Mul(g.IdentityWithControl(update, setAccX), lr)
		updates = append(updates, v.AssignSub(step))
	}
	op := g.Group("train/adadelta", updates...)
	return op, g.Err()
}

// Adam combines first- and second-moment estimates with bias correction.
type Adam struct {
	LearningRate float64 // typically 1e-3
	Beta1        float64 // typically 0.9
	Beta2        float64 // typically 0.999
	Epsilon      float64 // typically 1e-8
}

// Minimize implements Optimizer.
func (o *Adam) Minimize(g *tf.Graph, loss tf.Output, vars []*tf.Variable) (*tf.Operation, error) {
	return minimize(o, g, loss, vars)
}

// ApplyGradients implements Optimizer.
func (o *Adam) ApplyGradients(g *tf.Graph, grads []tf.Gradient, vars []*tf.Variable) (*tf.Operation, error) {
	if len(grads) != len(vars) {
		return nil, fmt.Errorf("train: %d gradients for %d variables", len(grads), len(vars))
	}
	beta1, beta2 := o.Beta1, o.Beta2
	if beta1 == 0 {
		beta1 = 0.9
	}
	if beta2 == 0 {
		beta2 = 0.999
	}
	eps := o.Epsilon
	if eps <= 0 {
		eps = 1e-8
	}
	// Shared timestep drives the bias correction.
	t := g.NewVariableFromTensor("train/adam_t", scalarOf(tf.Float32, 0))
	tUp := t.AssignAdd(g.Const(float32(1)))
	tNow := g.IdentityWithControl(t.Value(), tUp)
	b1 := g.Const(float32(beta1))
	b2 := g.Const(float32(beta2))
	corr1 := g.Sub(g.Const(float32(1)), g.Pow(b1, tNow))
	corr2 := g.Sub(g.Const(float32(1)), g.Pow(b2, tNow))

	var updates []*tf.Operation
	for i, grad := range grads {
		v := vars[i]
		if grad.IsZero() {
			continue
		}
		dense, err := g.DensifyGradient(grad)
		if err != nil {
			return nil, err
		}
		m := slotVar(g, v, "adam_m", 0)
		vv := slotVar(g, v, "adam_v", 0)
		oneMinusB1 := g.Const(scalarOf(v.DType(), 1-beta1))
		oneMinusB2 := g.Const(scalarOf(v.DType(), 1-beta2))
		newM := g.Add(g.Mul(m.Value(), b1), g.Mul(dense, oneMinusB1))
		newV := g.Add(g.Mul(vv.Value(), b2), g.Mul(g.Square(dense), oneMinusB2))
		setM := m.Assign(newM)
		setV := vv.Assign(newV)
		mHat := g.Div(g.IdentityWithControl(newM, setM), corr1)
		vHat := g.Div(g.IdentityWithControl(newV, setV), corr2)
		lr := g.Const(scalarOf(v.DType(), o.LearningRate))
		step := g.Div(g.Mul(mHat, lr), g.Add(g.Sqrt(vHat), g.Const(scalarOf(v.DType(), eps))))
		updates = append(updates, v.AssignSub(step))
	}
	op := g.Group("train/adam", updates...)
	return op, g.Err()
}

// ClipByGlobalNorm rescales dense gradients so their joint L2 norm is at
// most clip — the gradient-clipping refinement users layered on the
// differentiation library (§4.1).
func ClipByGlobalNorm(g *tf.Graph, grads []tf.Gradient, clip float64) ([]tf.Gradient, error) {
	var sq []tf.Output
	for _, grad := range grads {
		if grad.IsZero() {
			continue
		}
		d, err := g.DensifyGradient(grad)
		if err != nil {
			return nil, err
		}
		sq = append(sq, g.Sum(g.Square(d), nil, false))
	}
	if len(sq) == 0 {
		return grads, nil
	}
	norm := g.Sqrt(g.AddN(sq...))
	clipC := g.Const(scalarOf(norm.DType(), clip))
	scale := g.Div(clipC, g.Maximum(norm, clipC))
	out := make([]tf.Gradient, len(grads))
	for i, grad := range grads {
		if grad.IsZero() {
			out[i] = grad
			continue
		}
		d, err := g.DensifyGradient(grad)
		if err != nil {
			return nil, err
		}
		out[i] = tf.Gradient{Dense: g.Mul(d, scale)}
	}
	return out, g.Err()
}
