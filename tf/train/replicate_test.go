package train

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/distributed"
	"repro/internal/simcluster"
	"repro/tf"
	"repro/tf/nn"
)

const (
	repFeatures = 2
	repBatch    = 8
)

var repWTrue = []float32{1.5, -2}

// repModel is the shared test model: linear regression with the weight and
// bias sharded across the PS tasks.
func repModel(rb *ReplicaGraph) (*Model, error) {
	x := rb.Placeholder("x", tf.Float32, tf.Shape{repBatch, repFeatures})
	y := rb.Placeholder("y", tf.Float32, tf.Shape{repBatch, 1})
	w := rb.Variable("w", tf.NewTensor(tf.Float32, tf.Shape{repFeatures, 1}))
	b := rb.Variable("b", tf.NewTensor(tf.Float32, tf.Shape{1}))
	pred := rb.Add(rb.MatMul(x, w.Value()), b.Value())
	loss := rb.Mean(rb.Square(rb.Sub(pred, y)), nil, false)
	return &Model{Loss: loss, Inputs: map[string]tf.Output{"x": x, "y": y}}, nil
}

func repFeeds(seed int64) map[string]*tf.Tensor {
	xs, ys := nn.LinearData(seed, repBatch, repFeatures, repWTrue, 0.5, 0.01)
	return map[string]*tf.Tensor{"x": xs, "y": ys}
}

func inprocReplicated(t *testing.T, opts ReplicatedOptions, psTasks, workers int) (*Replicated, *distributed.InProcCluster) {
	t.Helper()
	spec := distributed.ClusterSpec{
		"ps":     make([]string, psTasks),
		"worker": make([]string, workers),
	}
	cluster := distributed.NewInProcCluster(spec)
	opts.Cluster = spec
	opts.Resolver = cluster.Resolver()
	if opts.Optimizer == nil {
		opts.Optimizer = &GradientDescent{LearningRate: 0.1}
	}
	r, err := NewReplicated(opts, repModel)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r, cluster
}

func TestReplicatedAsyncTrainsAndShards(t *testing.T) {
	r, cluster := inprocReplicated(t, ReplicatedOptions{}, 2, 2)
	if step, err := r.Init(); err != nil || step != 0 {
		t.Fatalf("Init = %d, %v", step, err)
	}

	var first, last float64
	const steps = 40
	for s := 0; s < steps; s++ {
		wi := s % 2
		loss, err := r.TrainStep(wi, repFeeds(int64(s)))
		if err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
		if s == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first/10 {
		t.Errorf("async training did not converge: first %.4f, last %.4f", first, last)
	}
	if step, err := r.GlobalStep(); err != nil || step != steps {
		t.Errorf("global step = %d, %v; want %d", step, err, steps)
	}
	// The model parameters are sharded round-robin: w on ps/0, b on ps/1;
	// the global step rides on ps/0.
	ps0 := cluster.Workers["/job:ps/task:0"].Device().Resources().VariableNames()
	ps1 := cluster.Workers["/job:ps/task:1"].Device().Resources().VariableNames()
	if len(ps0) == 0 || len(ps1) == 0 {
		t.Errorf("variables not sharded: ps0=%v ps1=%v", ps0, ps1)
	}
	for _, wt := range []string{"/job:worker/task:0", "/job:worker/task:1"} {
		if names := cluster.Workers[wt].Device().Resources().VariableNames(); len(names) != 0 {
			t.Errorf("%s owns variables %v; parameters belong on the ps job", wt, names)
		}
	}
}

func TestReplicatedAsyncConcurrentWorkers(t *testing.T) {
	r, _ := inprocReplicated(t, ReplicatedOptions{}, 2, 3)
	if _, err := r.Init(); err != nil {
		t.Fatal(err)
	}
	const perWorker = 15
	var wg sync.WaitGroup
	errCh := make(chan error, r.NumReplicas()*perWorker)
	for wi := 0; wi < r.NumReplicas(); wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for s := 0; s < perWorker; s++ {
				if _, err := r.TrainStep(wi, repFeeds(int64(wi*1000+s))); err != nil {
					errCh <- fmt.Errorf("worker %d step %d: %w", wi, s, err)
					return
				}
			}
		}(wi)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// No lost updates on the shared step counter (§4.4, Figure 4a).
	if step, err := r.GlobalStep(); err != nil || step != int64(r.NumReplicas()*perWorker) {
		t.Errorf("global step = %d, %v; want %d", step, err, r.NumReplicas()*perWorker)
	}
}

func TestReplicatedSyncAggregates(t *testing.T) {
	r, _ := inprocReplicated(t, ReplicatedOptions{Sync: true}, 2, 2)
	if _, err := r.Init(); err != nil {
		t.Fatal(err)
	}
	const rounds = 25
	var wg sync.WaitGroup
	losses := make([][]float64, r.NumReplicas())
	errCh := make(chan error, r.NumReplicas())
	for wi := 0; wi < r.NumReplicas(); wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for s := 0; s < rounds; s++ {
				loss, err := r.TrainStep(wi, repFeeds(int64(wi*1000+s)))
				if err != nil {
					errCh <- err
					return
				}
				losses[wi] = append(losses[wi], loss)
			}
		}(wi)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Every worker contributed to every round: exactly `rounds` aggregated
	// applications.
	if step, err := r.GlobalStep(); err != nil || step != rounds {
		t.Errorf("global step = %d, %v; want %d", step, err, rounds)
	}
	for wi, ls := range losses {
		if ls[len(ls)-1] >= ls[0]/10 {
			t.Errorf("worker %d did not converge: %.4f → %.4f", wi, ls[0], ls[len(ls)-1])
		}
	}
}

// TestReplicatedSyncProceedsWithoutStraggler is the m-of-n property of
// Figure 4c: with one backup worker, rounds complete while a straggler is
// stalled, and its stale gradients are discarded when it returns.
func TestReplicatedSyncProceedsWithoutStraggler(t *testing.T) {
	r, _ := inprocReplicated(t, ReplicatedOptions{Sync: true, Backups: 1}, 1, 3)
	if _, err := r.Init(); err != nil {
		t.Fatal(err)
	}
	const rounds = 10
	var wg sync.WaitGroup
	errCh := make(chan error, 2)
	// Workers 0 and 1 run freely; worker 2 stays stalled.
	for wi := 0; wi < 2; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for s := 0; s < rounds; s++ {
				if _, err := r.TrainStep(wi, repFeeds(int64(wi*1000+s))); err != nil {
					errCh <- err
					return
				}
			}
		}(wi)
	}
	wg.Wait() // m = 2 fresh tuples per round: the stall must not block this
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if step, err := r.GlobalStep(); err != nil || step != rounds {
		t.Fatalf("global step = %d, %v; want %d with the straggler stalled", step, err, rounds)
	}

	// The straggler wakes up: its round-0 gradients are stale, get
	// discarded, and it resumes participating without corrupting the step
	// count (it blocks in the next round's barrier, which needs another
	// worker, so drive worker 0 alongside it).
	var wg2 sync.WaitGroup
	errCh2 := make(chan error, 2)
	for _, wi := range []int{0, 2} {
		wg2.Add(1)
		go func(wi int) {
			defer wg2.Done()
			if _, err := r.TrainStep(wi, repFeeds(42)); err != nil {
				errCh2 <- err
			}
		}(wi)
	}
	wg2.Wait()
	close(errCh2)
	for err := range errCh2 {
		t.Fatal(err)
	}
	if step, err := r.GlobalStep(); err != nil || step != rounds+1 {
		t.Errorf("global step after straggler rejoined = %d, %v; want %d", step, err, rounds+1)
	}
}

// TestReplicatedInitRecoversLostShard is the §4.3 partial-failure case the
// global-step probe alone would miss: a PS task that crashed before its
// first checkpoint restarts empty, while the other shards hold trained
// state. Init must re-run exactly the lost shard's initializers — wedging
// on the uninitialized variable and clobbering the healthy shard are both
// wrong.
func TestReplicatedInitRecoversLostShard(t *testing.T) {
	r, cluster := inprocReplicated(t, ReplicatedOptions{}, 2, 1)
	if _, err := r.Init(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 10; s++ {
		if _, err := r.TrainStep(0, repFeeds(int64(s))); err != nil {
			t.Fatal(err)
		}
	}
	r.Close()
	trainedW := cluster.Workers["/job:ps/task:0"].Device().Resources().SnapshotVariables()["w"]
	if trainedW == nil || trainedW.FloatAt(0) == 0 {
		t.Fatal("w should hold trained state on ps task 0")
	}

	// ps task 1 (hosting b) dies with no checkpoint to restore.
	cluster.Workers["/job:ps/task:1"].Reset()

	r2, err := NewReplicated(ReplicatedOptions{
		Cluster: r.opts.Cluster, Resolver: cluster.Resolver(),
		Optimizer: &GradientDescent{LearningRate: 0.1},
	}, repModel)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	step, err := r2.Init()
	if err != nil {
		t.Fatalf("Init on a partially lost cluster: %v", err)
	}
	if step != 10 {
		t.Errorf("global step = %d, want 10 (healthy shard untouched)", step)
	}
	afterW := cluster.Workers["/job:ps/task:0"].Device().Resources().SnapshotVariables()["w"]
	if !afterW.Equal(trainedW) {
		t.Errorf("selective init clobbered the healthy shard: %v → %v", trainedW, afterW)
	}
	if b := cluster.Workers["/job:ps/task:1"].Device().Resources().SnapshotVariables()["b"]; b == nil {
		t.Error("lost shard's variable b was not re-initialized")
	}
	if _, err := r2.TrainStep(0, repFeeds(99)); err != nil {
		t.Errorf("training after shard recovery: %v", err)
	}
}

// TestReplicatedSyncFailurePropagates pins the liveness contract: when more
// replicas die than there are backup workers, no round can complete, so
// surviving workers must get the terminal error instead of blocking in the
// barrier forever.
func TestReplicatedSyncFailurePropagates(t *testing.T) {
	spec := distributed.ClusterSpec{"ps": make([]string, 1), "worker": make([]string, 2)}
	cluster := distributed.NewInProcCluster(spec)
	var killWorker1 atomic.Bool
	resolver := func(task string) (distributed.Transport, error) {
		if killWorker1.Load() && task == "/job:worker/task:1" {
			return nil, fmt.Errorf("injected: %s is gone", task)
		}
		return cluster.Resolver()(task)
	}
	r, err := NewReplicated(ReplicatedOptions{
		Cluster: spec, Resolver: resolver,
		Optimizer: &GradientDescent{LearningRate: 0.1},
		Sync:      true,
	}, repModel)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Init(); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 2)
	go func() { // worker 0 keeps stepping until the trainer fails
		for {
			if _, err := r.TrainStep(0, repFeeds(1)); err != nil {
				done <- err
				return
			}
		}
	}()
	go func() { // worker 1 completes one round, then its task dies
		if _, err := r.TrainStep(1, repFeeds(2)); err != nil {
			done <- err
			return
		}
		killWorker1.Store(true)
		_, err := r.TrainStep(1, repFeeds(3))
		done <- err
	}()
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err == nil {
				t.Error("worker should surface the terminal failure")
			}
		case <-time.After(10 * time.Second):
			t.Fatal("sync trainer hung instead of propagating the replica failure")
		}
	}
}

// TestReplicatedSyncTransientFailuresDontKill: a failing mark is cleared
// when the replica steps successfully again, so two transient outages at
// different times on different replicas never add up to a spurious
// whole-trainer failure.
func TestReplicatedSyncTransientFailuresDontKill(t *testing.T) {
	spec := distributed.ClusterSpec{"ps": make([]string, 1), "worker": make([]string, 3)}
	cluster := distributed.NewInProcCluster(spec)
	var downMu sync.Mutex
	down := map[string]bool{}
	setDown := func(task string, d bool) {
		downMu.Lock()
		down[task] = d
		downMu.Unlock()
	}
	resolver := func(task string) (distributed.Transport, error) {
		downMu.Lock()
		d := down[task]
		downMu.Unlock()
		if d {
			return nil, fmt.Errorf("injected: %s is down", task)
		}
		return cluster.Resolver()(task)
	}
	r, err := NewReplicated(ReplicatedOptions{
		Cluster: spec, Resolver: resolver,
		Optimizer: &GradientDescent{LearningRate: 0.1},
		Sync:      true,
		Backups:   1,
	}, repModel)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Init(); err != nil {
		t.Fatal(err)
	}

	round := func(a, b int, seed int64) {
		t.Helper()
		var wg sync.WaitGroup
		errCh := make(chan error, 2)
		for _, wi := range []int{a, b} {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				if _, err := r.TrainStep(wi, repFeeds(seed+int64(wi))); err != nil {
					errCh <- err
				}
			}(wi)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			t.Fatal(err)
		}
	}

	round(0, 1, 100)
	// Transient outage on worker 1's task: one failed step marks it...
	setDown("/job:worker/task:1", true)
	if _, err := r.TrainStep(1, repFeeds(1)); err == nil {
		t.Fatal("step against a down task should fail")
	}
	setDown("/job:worker/task:1", false)
	round(0, 1, 200) // ...and a successful step clears the mark.
	// A later, unrelated outage on worker 0 must not combine with it.
	setDown("/job:worker/task:0", true)
	if _, err := r.TrainStep(0, repFeeds(2)); err == nil {
		t.Fatal("step against a down task should fail")
	}
	round(1, 2, 300)
	if step, err := r.GlobalStep(); err != nil || step != 3 {
		t.Errorf("global step = %d, %v; want 3 (trainer alive through both transients)", step, err)
	}
}

func TestReplicatedCheckpointCadence(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "ckpt")
	r, _ := inprocReplicated(t, ReplicatedOptions{
		CheckpointPrefix: prefix,
		CheckpointEvery:  5,
		KeepCheckpoints:  2,
	}, 2, 1)
	if _, err := r.Init(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 12; s++ {
		if _, err := r.TrainStep(0, repFeeds(int64(s))); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.SaveErr(); err != nil {
		t.Fatal(err)
	}
	// Steps 5 and 10 crossed the cadence: both shards should have files,
	// keyed by the global step.
	for _, shard := range []string{"ckpt.ps-0", "ckpt.ps-1"} {
		matches, _ := filepath.Glob(filepath.Join(dir, shard+"-*"))
		if len(matches) == 0 {
			t.Errorf("no checkpoints written for %s", shard)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "ckpt.ps-0-10")); err != nil {
		t.Errorf("expected a step-10 checkpoint for ps shard 0: %v", err)
	}
	if err := r.SaveNow(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "ckpt.ps-0-12")); err != nil {
		t.Errorf("SaveNow should write the step-12 shard: %v", err)
	}
}

// TestSimulatorPredictsBackupWorkerBenefit validates the simulator's §4.4
// prediction — under a heavy straggler tail, synchronous training with one
// backup worker beats plain synchronous coordination — and checks the real
// runtime agrees: with one replica stalled, the m-of-n barrier completes
// rounds in far less wall-clock time than any schedule that waited for the
// straggler could.
func TestSimulatorPredictsBackupWorkerBenefit(t *testing.T) {
	// Simulator side (Figure 8): same cluster, with and without a backup.
	base := simcluster.ClusterConfig{
		Workers: 2, PSTasks: 1, Sync: true,
		ModelBytes: 1e6, ComputeTime: 5e-3,
		StragglerSigma: 0.3, SpikeProb: 0.3,
	}
	withBackup := base
	withBackup.Backups = 1
	withBackup.Workers = 2 // still aggregate 2 of 3
	plain := simcluster.SimulateCluster(base, 200)
	backup := simcluster.SimulateCluster(withBackup, 200)
	if backup.Median() >= plain.Median() {
		t.Errorf("sim: backup worker should cut the median sync step under a straggler tail: %.4fs vs %.4fs",
			backup.Median(), plain.Median())
	}

	// Real runtime side: 3 replicas, m = 2; replica 2 stalls `stall` per
	// step. If rounds waited for it, `rounds` rounds would take at least
	// rounds×stall; the m-of-n barrier must come in well under half that.
	const (
		rounds = 6
		stall  = 150 * time.Millisecond
	)
	r, _ := inprocReplicated(t, ReplicatedOptions{Sync: true, Backups: 1}, 1, 3)
	if _, err := r.Init(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { // the straggler: stalls before every contribution
		for {
			select {
			case <-done:
				return
			case <-time.After(stall):
			}
			if _, err := r.TrainStep(2, repFeeds(7)); err != nil {
				return
			}
		}
	}()
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, 2)
	for wi := 0; wi < 2; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for s := 0; s < rounds; s++ {
				if _, err := r.TrainStep(wi, repFeeds(int64(wi*100+s))); err != nil {
					errCh <- err
					return
				}
			}
		}(wi)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(done)
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if lower := time.Duration(rounds) * stall; elapsed >= lower/2 {
		t.Errorf("real runtime: %d m-of-n rounds took %v; waiting on the straggler would take ≥ %v — backup workers should decouple the barrier from the tail",
			rounds, elapsed, lower)
	}
	r.Close()
}
