package tf_test

import (
	"fmt"

	"repro/tf"
)

// WithDevice scopes mirror the reference client's `with tf.device(...)`
// blocks (§3.3): every node built through the view carries the constraint,
// nested scopes refine it, and the distributed master's placer resolves
// partial specs to concrete devices.
func ExampleGraph_WithDevice() {
	g := tf.NewGraph()

	ps := g.WithDevice("/job:ps")
	w := ps.WithDevice("/task:0").NewVariableFromTensor("w", tf.Scalar(0))
	b := ps.WithDevice("/task:1").NewVariableFromTensor("b", tf.Scalar(0))

	fmt.Println(w.Node().Device())
	fmt.Println(b.Node().Device())
	// Output:
	// /job:ps/task:0
	// /job:ps/task:1
}

// WithScope prefixes node names, keeping towers, layers and gradient
// subgraphs legible inside one flat namespace.
func ExampleGraph_WithScope() {
	g := tf.NewGraph()

	layer := g.WithScope("tower0").WithScope("layer1")
	x := layer.Const(float32(2))

	fmt.Println(x.Op().Name())
	// Output:
	// tower0/layer1/Const
}

// ColocateWith pins derived state — optimizer slots, accumulators — onto
// the device of the operation it shadows, without naming that device.
func ExampleGraph_ColocateWith() {
	g := tf.NewGraph()

	v := g.WithDevice("/job:ps/task:2").NewVariableFromTensor("params", tf.Scalar(0))
	slot := g.ColocateWith(v.Ref().Op()).NewVariableFromTensor("params/slot", tf.Scalar(0))

	fmt.Println(slot.Node().Colocation())
	// Output:
	// [params]
}
