package tf_test

// Freeze-equivalence battery: freezing a trained graph must change nothing
// about what it computes. The conv model of examples/imageclass trains
// through its queue-based input pipeline, is frozen to an image→logits
// predict signature, and the frozen graph's predictions must be
// bit-identical to the live training session's across random inputs. A
// golden snapshot pins the frozen graph's structure (refresh: make golden).

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/serving"
	"repro/internal/tensor"
	"repro/tf"
	"repro/tf/nn"
	"repro/tf/train"
)

const (
	fzBatch   = 16
	fzImgSize = 8
	fzClasses = 4
)

// trainedImageModel builds the imageclass architecture (conv → pool → conv
// → pool → dense over a FIFOQueue input pipeline), trains it a few steps,
// and returns the live session plus the endpoints of the predict signature.
func trainedImageModel(t testing.TB) (*tf.Graph, *tf.Session, tf.Output, tf.Output) {
	t.Helper()
	g := tf.NewGraph()
	g.SetSeed(7)

	q := g.FIFOQueue("input", 64,
		[]tf.DType{tf.Float32, tf.Int32},
		[]tf.Shape{{fzImgSize, fzImgSize, 1}, {}})
	rawImg := g.Placeholder("raw_img", tf.Float32, tf.Shape{fzBatch, fzImgSize, fzImgSize, 1})
	rawLbl := g.Placeholder("raw_lbl", tf.Int32, tf.Shape{fzBatch})
	enqueue := q.EnqueueMany(rawImg, rawLbl)
	batchOuts := q.DequeueMany(fzBatch)
	images, labels := batchOuts[0], batchOuts[1]

	conv1, v1 := nn.Conv2DLayer(g, "conv1", images, 8, 3, 3, [2]int{1, 1}, "SAME", nn.ReLU)
	pool1 := g.MaxPool(conv1, [2]int{2, 2}, [2]int{2, 2}, "VALID")
	conv2, v2 := nn.Conv2DLayer(g, "conv2", pool1, 16, 3, 3, [2]int{1, 1}, "SAME", nn.ReLU)
	pool2 := g.MaxPool(conv2, [2]int{2, 2}, [2]int{2, 2}, "VALID")
	logits, v3 := nn.Dense(g, "head", nn.Flatten(g, pool2), fzClasses, nn.Linear)

	vars := append(append(v1, v2...), v3...)
	loss := nn.CrossEntropyLoss(g, logits, labels, 1e-4, vars)
	opt := &train.Momentum{LearningRate: 0.03, Decay: 0.9}
	trainOp, err := opt.Minimize(g, loss, vars)
	if err != nil {
		t.Fatal(err)
	}

	sess, err := tf.NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sess.Close)
	if err := sess.RunTargets(g.InitOp()); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 8; step++ {
		xs, ys := nn.SyntheticImages(nil, int64(step), fzBatch, fzImgSize, fzImgSize, 1, fzClasses)
		if _, err := sess.Run(map[tf.Output]*tf.Tensor{rawImg: xs, rawLbl: ys}, nil, enqueue); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Run(nil, []tf.Output{loss}, trainOp); err != nil {
			t.Fatal(err)
		}
	}
	return g, sess, images, logits
}

// TestFreezeEquivalence is the bit-identical property test: across random
// inputs, the frozen graph (run through tf.Frozen.Session and through a
// serving.Model) must reproduce the live session's logits exactly — same
// kernels, same values, no tolerance.
func TestFreezeEquivalence(t *testing.T) {
	_, sess, images, logits := trainedImageModel(t)

	frozen, err := tf.Freeze(sess,
		[]tf.SigTensor{{Alias: "image", Output: images}},
		[]tf.SigTensor{{Alias: "logits", Output: logits}},
		tf.FreezeOptions{})
	if err != nil {
		t.Fatal(err)
	}

	fsess, outs, err := frozen.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer fsess.Close()

	model, err := serving.NewModel("imageclass", 1, frozen.Graph(), frozen.Signature(), serving.ModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer model.Close()

	for trial := 0; trial < 20; trial++ {
		xs, _ := nn.SyntheticImages(nil, int64(100+trial), fzBatch, fzImgSize, fzImgSize, 1, fzClasses)

		live, err := sess.Run(map[tf.Output]*tf.Tensor{images: xs}, []tf.Output{logits})
		if err != nil {
			t.Fatal(err)
		}
		froz, err := fsess.Run(map[tf.Output]*tf.Tensor{outs["image"]: xs}, []tf.Output{outs["logits"]})
		if err != nil {
			t.Fatal(err)
		}
		if !live[0].Equal(froz[0]) {
			t.Fatalf("trial %d: frozen session logits differ from live session", trial)
		}
		served, err := model.Predict([]*tensor.Tensor{xs})
		if err != nil {
			t.Fatal(err)
		}
		if !live[0].Equal(served[0]) {
			t.Fatalf("trial %d: serving model logits differ from live session", trial)
		}
	}
}

// TestFreezeRejectsStateAndMissingFeeds pins the freeze pass's error
// surface: a signature whose subgraph still contains state (the optimizer's
// Assign ops, the queue) or an unfed placeholder must be refused by name.
func TestFreezeRejectsStateAndMissingFeeds(t *testing.T) {
	g := tf.NewGraph()
	x := g.Placeholder("x", tf.Float32, tf.Shape{2, 2})
	v := g.NewVariableFromTensor("w", tf.Scalar(3))
	y := g.Mul(x, v.Value())
	sum := g.Add(y, x)
	sess, err := tf.NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.RunTargets(g.InitOp()); err != nil {
		t.Fatal(err)
	}

	// Fetching through an Assign is stateful and must be refused.
	assignOut := v.Assign(g.Const(tf.Scalar(4))).Output(0)
	if _, err := tf.Freeze(sess,
		[]tf.SigTensor{{Alias: "x", Output: x}},
		[]tf.SigTensor{{Alias: "w2", Output: assignOut}},
		tf.FreezeOptions{}); err == nil || !strings.Contains(err.Error(), "stateful") {
		t.Fatalf("freezing through Assign: got %v, want stateful-op error", err)
	}

	// A reachable placeholder missing from the feed list is an error.
	if _, err := tf.Freeze(sess, []tf.SigTensor{},
		[]tf.SigTensor{{Alias: "y", Output: sum}},
		tf.FreezeOptions{}); err == nil {
		t.Fatal("freeze with no inputs succeeded")
	}
	g2 := tf.NewGraph()
	a := g2.Placeholder("a", tf.Float32, tf.Shape{2})
	b := g2.Placeholder("b", tf.Float32, tf.Shape{2})
	c := g2.Add(a, b)
	sess2, err := tf.NewSession(g2)
	if err != nil {
		t.Fatal(err)
	}
	defer sess2.Close()
	if _, err := tf.Freeze(sess2,
		[]tf.SigTensor{{Alias: "a", Output: a}},
		[]tf.SigTensor{{Alias: "c", Output: c}},
		tf.FreezeOptions{}); err == nil || !strings.Contains(err.Error(), "not in the feed list") {
		t.Fatalf("freezing with unfed placeholder: got %v, want unfed-placeholder error", err)
	}

	// An uninitialized variable has no value to fold.
	g3 := tf.NewGraph()
	x3 := g3.Placeholder("x", tf.Float32, tf.Shape{2})
	v3 := g3.NewVariableFromTensor("w3", tf.Scalar(1))
	y3 := g3.Mul(x3, v3.Value())
	sess3, err := tf.NewSession(g3)
	if err != nil {
		t.Fatal(err)
	}
	defer sess3.Close()
	if _, err := tf.Freeze(sess3,
		[]tf.SigTensor{{Alias: "x", Output: x3}},
		[]tf.SigTensor{{Alias: "y", Output: y3}},
		tf.FreezeOptions{}); err == nil || !strings.Contains(err.Error(), "no snapshot value") {
		t.Fatalf("freezing uninitialized variable: got %v, want no-snapshot error", err)
	}
}

// TestFreezeBatchDim freezes a dense model with BatchDim and checks the
// frozen graph accepts any batch size, with per-row results identical to
// feeding the rows one at a time.
func TestFreezeBatchDim(t *testing.T) {
	g := tf.NewGraph()
	g.SetSeed(3)
	x := g.Placeholder("x", tf.Float32, tf.Shape{1, 6})
	h, v1 := nn.Dense(g, "hidden", x, 8, nn.ReLU)
	logits, v2 := nn.Dense(g, "out", h, 3, nn.Linear)
	_ = append(v1, v2...)
	sess, err := tf.NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.RunTargets(g.InitOp()); err != nil {
		t.Fatal(err)
	}

	frozen, err := tf.Freeze(sess,
		[]tf.SigTensor{{Alias: "x", Output: x}},
		[]tf.SigTensor{{Alias: "logits", Output: logits}},
		tf.FreezeOptions{BatchDim: true})
	if err != nil {
		t.Fatal(err)
	}
	sig := frozen.Signature()
	if !sig.Batchable {
		t.Fatal("BatchDim signature not marked batchable")
	}
	if got := sig.Inputs[0].Shape[0]; got != -1 {
		t.Fatalf("input batch dim = %d, want -1", got)
	}

	fsess, outs, err := frozen.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer fsess.Close()

	rng := tensor.NewRNG(5)
	batch := rng.Normal(tf.Float32, tf.Shape{7, 6}, 0, 1)
	whole, err := fsess.Run(map[tf.Output]*tf.Tensor{outs["x"]: batch}, []tf.Output{outs["logits"]})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := tensor.Split(batch, 0, []int{1, 1, 1, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		one, err := fsess.Run(map[tf.Output]*tf.Tensor{outs["x"]: row}, []tf.Output{outs["logits"]})
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 3; j++ {
			if one[0].FloatAt(j) != whole[0].FloatAt(i*3+j) {
				t.Fatalf("row %d col %d: batched %v != single %v", i, j, whole[0].FloatAt(i*3+j), one[0].FloatAt(j))
			}
		}
	}
}

// TestFrozenGraphGolden pins the frozen, optimized structure of the
// imageclass predict signature — the export-side counterpart of
// TestOptimizedGraphGolden. Refresh with `make golden`.
func TestFrozenGraphGolden(t *testing.T) {
	_, sess, images, logits := trainedImageModel(t)
	frozen, err := tf.Freeze(sess,
		[]tf.SigTensor{{Alias: "image", Output: images}},
		[]tf.SigTensor{{Alias: "logits", Output: logits}},
		tf.FreezeOptions{})
	if err != nil {
		t.Fatal(err)
	}

	var lines []string
	for _, n := range frozen.Graph().Nodes() {
		if n.Dead() {
			continue
		}
		parts := make([]string, 0, n.NumInputs()+len(n.ControlInputs()))
		for _, in := range n.Inputs() {
			parts = append(parts, in.String())
		}
		for _, c := range n.ControlInputs() {
			parts = append(parts, "^"+c.Name())
		}
		lines = append(lines, fmt.Sprintf("%s = %s(%s)", n.Name(), n.Op(), strings.Join(parts, ", ")))
	}
	sort.Strings(lines)
	got := strings.Join(lines, "\n") + "\n"

	path := filepath.Join("testdata", "frozen_graph.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `make golden`): %v", err)
	}
	if got != string(want) {
		t.Errorf("frozen graph drifted from golden snapshot.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestFreezeExportRoundTrip exports a frozen model to disk and reloads it
// through the serving loader: same signature, same predictions.
func TestFreezeExportRoundTrip(t *testing.T) {
	_, sess, images, logits := trainedImageModel(t)
	frozen, err := tf.Freeze(sess,
		[]tf.SigTensor{{Alias: "image", Output: images}},
		[]tf.SigTensor{{Alias: "logits", Output: logits}},
		tf.FreezeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	if err := frozen.Export(root, "imageclass", 1); err != nil {
		t.Fatal(err)
	}
	// Re-exporting the same version must be refused (versions are
	// immutable once published).
	if err := frozen.Export(root, "imageclass", 1); err == nil {
		t.Fatal("re-exporting an existing version succeeded")
	}

	m, err := serving.LoadModel(root, "imageclass", 1, serving.ModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Warm(); err != nil {
		t.Fatal(err)
	}

	xs, _ := nn.SyntheticImages(nil, 42, fzBatch, fzImgSize, fzImgSize, 1, fzClasses)
	live, err := sess.Run(map[tf.Output]*tf.Tensor{images: xs}, []tf.Output{logits})
	if err != nil {
		t.Fatal(err)
	}
	served, err := m.Predict([]*tensor.Tensor{xs})
	if err != nil {
		t.Fatal(err)
	}
	if !live[0].Equal(served[0]) {
		t.Fatal("reloaded model's logits differ from the live session")
	}
	if m.Sig.Inputs[0].Alias != "image" || m.Sig.Outputs[0].Alias != "logits" {
		t.Fatalf("signature lost aliases on round trip: %+v", m.Sig)
	}
}

// graphNodeOps is a tiny helper used to assert what ops survive freezing.
func graphNodeOps(g *graph.Graph) map[string]int {
	out := map[string]int{}
	for _, n := range g.Nodes() {
		if !n.Dead() {
			out[n.Op()]++
		}
	}
	return out
}

// TestFreezeFoldsVariablesAndState checks the frozen imageclass graph has
// no Variable, Read, queue or optimizer nodes left — only pure compute.
func TestFreezeFoldsVariablesAndState(t *testing.T) {
	_, sess, images, logits := trainedImageModel(t)
	frozen, err := tf.Freeze(sess,
		[]tf.SigTensor{{Alias: "image", Output: images}},
		[]tf.SigTensor{{Alias: "logits", Output: logits}},
		tf.FreezeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ops := graphNodeOps(frozen.Graph())
	for _, banned := range []string{"Variable", "Read", "Assign", "FIFOQueue", "Dequeue", "DequeueMany", "ApplyMomentum"} {
		if ops[banned] > 0 {
			t.Errorf("frozen graph still contains %d %s nodes", ops[banned], banned)
		}
	}
	if ops["Placeholder"] != 1 {
		t.Errorf("frozen graph has %d placeholders, want exactly the feed", ops["Placeholder"])
	}
	if ops["Conv2D"] == 0 {
		t.Error("frozen graph lost its Conv2D nodes")
	}
}
