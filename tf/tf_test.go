package tf_test

import (
	"math"
	"testing"

	"repro/tf"
)

func newSession(t *testing.T, g *tf.Graph) *tf.Session {
	t.Helper()
	s, err := tf.NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConstArithmetic(t *testing.T) {
	g := tf.NewGraph()
	x := g.Const([]float32{1, 2, 3})
	y := g.Const([]float32{10, 20, 30})
	z := g.Add(g.Mul(x, y), g.Const(float32(1)))
	s := newSession(t, g)
	out, err := s.Fetch1(nil, z)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{11, 41, 91}
	for i, v := range out.Float32s() {
		if v != want[i] {
			t.Fatalf("z = %v, want %v", out.Float32s(), want)
		}
	}
}

func TestConstConversions(t *testing.T) {
	g := tf.NewGraph()
	cases := []struct {
		v  any
		dt tf.DType
	}{
		{float32(1), tf.Float32}, {float64(1), tf.Float64},
		{int(1), tf.Int32}, {int32(1), tf.Int32}, {int64(1), tf.Int64},
		{true, tf.Bool}, {"s", tf.String},
		{[]float32{1}, tf.Float32}, {[]int64{1}, tf.Int64},
		{[][]float32{{1, 2}, {3, 4}}, tf.Float32},
	}
	for _, c := range cases {
		out := g.Const(c.v)
		if !out.Valid() || out.DType() != c.dt {
			t.Errorf("Const(%T) dtype = %v, want %v", c.v, out.DType(), c.dt)
		}
	}
	if err := g.Err(); err != nil {
		t.Fatal(err)
	}
	// 2-D constant has the right shape.
	m := g.Const([][]float32{{1, 2, 3}, {4, 5, 6}})
	if !m.Shape().Equal(tf.Shape{2, 3}) {
		t.Errorf("matrix const shape = %v", m.Shape())
	}
	// Unsupported type records an error.
	bad := tf.NewGraph()
	bad.Const(struct{}{})
	if bad.Err() == nil {
		t.Error("Const of struct should record an error")
	}
}

func TestGraphErrorPropagation(t *testing.T) {
	g := tf.NewGraph()
	x := g.Const([]float32{1, 2})
	y := g.Const([]float32{1, 2, 3})
	g.MatMul(x, y) // rank error
	if g.Err() == nil {
		t.Fatal("expected a recorded error")
	}
	if _, err := tf.NewSession(g); err == nil {
		t.Fatal("NewSession should refuse a broken graph")
	}
}

func TestVariableTrainingLoopSGDByHand(t *testing.T) {
	// Minimize (w - 3)² with manual gradient descent updates.
	g := tf.NewGraph()
	w := g.NewVariableFromTensor("w", tf.Scalar(0))
	target := g.Const(float32(3))
	diff := g.Sub(w.Value(), target)
	grad := g.Mul(g.Const(float32(2)), diff)
	lr := g.Const(float32(0.1))
	update := w.AssignSub(g.Mul(lr, grad))
	loss := g.Square(diff)

	s := newSession(t, g)
	if err := s.RunTargets(g.InitOp()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := s.RunTargets(update); err != nil {
			t.Fatal(err)
		}
	}
	out, err := s.Fetch1(nil, loss)
	if err != nil {
		t.Fatal(err)
	}
	if out.FloatAt(0) > 1e-6 {
		t.Errorf("loss after training = %g", out.FloatAt(0))
	}
}

func TestAutodiffLinearRegression(t *testing.T) {
	// Learn y = 2x + 1 from synthetic data using tf.Gradients.
	g := tf.NewGraph()
	g.SetSeed(42)
	x := g.Placeholder("x", tf.Float32, tf.Shape{8, 1})
	yTrue := g.Placeholder("y", tf.Float32, tf.Shape{8, 1})
	w := g.NewVariableFromTensor("w", tf.Scalar(0))
	b := g.NewVariableFromTensor("b", tf.Scalar(0))
	pred := g.Add(g.Mul(x, w.Value()), b.Value())
	loss := g.Mean(g.Square(g.Sub(pred, yTrue)), nil, false)

	grads, err := g.DenseGradients([]tf.Output{loss}, []tf.Output{w.Value(), b.Value()})
	if err != nil {
		t.Fatal(err)
	}
	lr := g.Const(float32(0.05))
	upW := w.AssignSub(g.Mul(lr, grads[0]))
	upB := b.AssignSub(g.Mul(lr, grads[1]))
	step := g.Group("train", upW, upB)

	s := newSession(t, g)
	if err := s.RunTargets(g.InitOp()); err != nil {
		t.Fatal(err)
	}
	rng := tf.NewRNG(1)
	var lastLoss float64
	for i := 0; i < 300; i++ {
		xs := rng.Uniform(tf.Float32, tf.Shape{8, 1}, -1, 1)
		ys := tf.NewTensor(tf.Float32, tf.Shape{8, 1})
		for j := 0; j < 8; j++ {
			ys.Float32s()[j] = 2*xs.Float32s()[j] + 1
		}
		out, err := s.Run(map[tf.Output]*tf.Tensor{x: xs, yTrue: ys}, []tf.Output{loss}, step)
		if err != nil {
			t.Fatal(err)
		}
		lastLoss = out[0].FloatAt(0)
	}
	if lastLoss > 1e-3 {
		t.Errorf("regression did not converge: loss %g", lastLoss)
	}
	wv, _ := s.Fetch1(nil, w.Value())
	bv, _ := s.Fetch1(nil, b.Value())
	if math.Abs(wv.FloatAt(0)-2) > 0.05 || math.Abs(bv.FloatAt(0)-1) > 0.05 {
		t.Errorf("learned w=%g b=%g, want 2 and 1", wv.FloatAt(0), bv.FloatAt(0))
	}
}

func TestCondExecutesOnlyTakenBranch(t *testing.T) {
	g := tf.NewGraph()
	pred := g.Placeholder("pred", tf.Bool, tf.Shape{})
	x := g.Const(float32(10))
	outs := g.Cond(pred, []tf.Output{x},
		func(ins []tf.Output) []tf.Output { return []tf.Output{g.Mul(ins[0], g.Const(float32(2)))} },
		func(ins []tf.Output) []tf.Output { return []tf.Output{g.Neg(ins[0])} },
	)
	if err := g.Err(); err != nil {
		t.Fatal(err)
	}
	s := newSession(t, g)
	outT, err := s.Fetch1(map[tf.Output]*tf.Tensor{pred: tf.ScalarBool(true)}, outs[0])
	if err != nil {
		t.Fatal(err)
	}
	if outT.FloatAt(0) != 20 {
		t.Errorf("then branch = %v, want 20", outT)
	}
	outF, err := s.Fetch1(map[tf.Output]*tf.Tensor{pred: tf.ScalarBool(false)}, outs[0])
	if err != nil {
		t.Fatal(err)
	}
	if outF.FloatAt(0) != -10 {
		t.Errorf("else branch = %v, want -10", outF)
	}
}

func TestCondBranchSideEffectsAreGated(t *testing.T) {
	// A variable update inside one branch must only run when taken.
	g := tf.NewGraph()
	v := g.NewVariableFromTensor("v", tf.Scalar(0))
	pred := g.Placeholder("pred", tf.Bool, tf.Shape{})
	one := g.Const(float32(1))
	outs := g.Cond(pred, []tf.Output{one},
		func(ins []tf.Output) []tf.Output {
			up := v.AssignAdd(ins[0])
			return []tf.Output{g.IdentityWithControl(ins[0], up)}
		},
		func(ins []tf.Output) []tf.Output { return []tf.Output{ins[0]} },
	)
	if err := g.Err(); err != nil {
		t.Fatal(err)
	}
	s := newSession(t, g)
	if err := s.RunTargets(g.InitOp()); err != nil {
		t.Fatal(err)
	}
	run := func(p bool) {
		if _, err := s.Fetch1(map[tf.Output]*tf.Tensor{pred: tf.ScalarBool(p)}, outs[0]); err != nil {
			t.Fatal(err)
		}
	}
	run(true)
	run(false)
	run(true)
	got, err := s.Fetch1(nil, v.Value())
	if err != nil {
		t.Fatal(err)
	}
	if got.FloatAt(0) != 2 {
		t.Errorf("v = %v after 2 true branches, want 2", got)
	}
}

func TestWhileLoopCountsIterations(t *testing.T) {
	// while (i < 10) { i += 1; acc *= 2 }
	g := tf.NewGraph()
	i0 := g.Const(float32(0))
	acc0 := g.Const(float32(1))
	limit := g.Const(float32(10))
	outs := g.While(
		[]tf.Output{i0, acc0},
		[]tf.Output{limit},
		func(vars, invs []tf.Output) tf.Output { return g.Less(vars[0], invs[0]) },
		func(vars, invs []tf.Output) []tf.Output {
			return []tf.Output{
				g.Add(vars[0], g.Const(float32(1))),
				g.Mul(vars[1], g.Const(float32(2))),
			}
		},
	)
	if err := g.Err(); err != nil {
		t.Fatal(err)
	}
	s := newSession(t, g)
	out, err := s.Run(nil, outs)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].FloatAt(0) != 10 {
		t.Errorf("final i = %v, want 10", out[0])
	}
	if out[1].FloatAt(0) != 1024 {
		t.Errorf("final acc = %v, want 2^10", out[1])
	}
}

func TestWhileLoopZeroIterations(t *testing.T) {
	g := tf.NewGraph()
	i0 := g.Const(float32(5))
	outs := g.While(
		[]tf.Output{i0}, nil,
		func(vars, invs []tf.Output) tf.Output { return g.Less(vars[0], g.Const(float32(0))) },
		func(vars, invs []tf.Output) []tf.Output {
			return []tf.Output{g.Add(vars[0], g.Const(float32(1)))}
		},
	)
	if err := g.Err(); err != nil {
		t.Fatal(err)
	}
	s := newSession(t, g)
	out, err := s.Run(nil, outs)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].FloatAt(0) != 5 {
		t.Errorf("zero-iteration loop result = %v, want untouched 5", out[0])
	}
}

func TestNestedWhileLoops(t *testing.T) {
	// outer: for i in 0..3 { inner: for j in 0..2 { total += 1 } }
	g := tf.NewGraph()
	zero := g.Const(float32(0))
	outs := g.While(
		[]tf.Output{g.Const(float32(0)), zero}, nil,
		func(vars, invs []tf.Output) tf.Output { return g.Less(vars[0], g.Const(float32(3))) },
		func(vars, invs []tf.Output) []tf.Output {
			inner := g.While(
				[]tf.Output{g.ZerosLike(vars[0]), vars[1]}, nil,
				func(iv, _ []tf.Output) tf.Output { return g.Less(iv[0], g.Const(float32(2))) },
				func(iv, _ []tf.Output) []tf.Output {
					return []tf.Output{
						g.Add(iv[0], g.Const(float32(1))),
						g.Add(iv[1], g.Const(float32(1))),
					}
				},
			)
			return []tf.Output{g.Add(vars[0], g.Const(float32(1))), inner[1]}
		},
	)
	if err := g.Err(); err != nil {
		t.Fatal(err)
	}
	s := newSession(t, g)
	out, err := s.Run(nil, outs)
	if err != nil {
		t.Fatal(err)
	}
	if out[1].FloatAt(0) != 6 {
		t.Errorf("nested loop total = %v, want 6", out[1])
	}
}

func TestWhileLoopWithFedPlaceholderCapture(t *testing.T) {
	// Regression: a placeholder captured into the loop frame makes its
	// Enter a root of the compiled step (its only input is fed); the
	// executor must still run that Enter in the child frame or the loop
	// deadlocks and the Exit is never produced.
	g := tf.NewGraph()
	limit := g.Placeholder("limit", tf.Float32, tf.Shape{})
	step := g.Placeholder("step", tf.Float32, tf.Shape{})
	outs := g.While(
		[]tf.Output{g.Const(float32(0)), g.Const(float32(0))}, nil,
		func(vars, _ []tf.Output) tf.Output { return g.Less(vars[0], limit) },
		func(vars, _ []tf.Output) []tf.Output {
			i := g.Add(vars[0], step) // fed value used in the body too
			return []tf.Output{i, g.Add(vars[1], i)}
		},
	)
	if err := g.Err(); err != nil {
		t.Fatal(err)
	}
	s := newSession(t, g)
	// sum of 1..10: both feeds cross into the frame via constant Enters.
	out, err := s.Run(map[tf.Output]*tf.Tensor{
		limit: tf.Scalar(10),
		step:  tf.Scalar(1),
	}, outs)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].FloatAt(0) != 10 || out[1].FloatAt(0) != 55 {
		t.Errorf("loop results = %v, %v; want 10, 55", out[0], out[1])
	}
	// Re-run with different feeds: the cached executable must not pin the
	// first step's captured values.
	out, err = s.Run(map[tf.Output]*tf.Tensor{
		limit: tf.Scalar(6),
		step:  tf.Scalar(2),
	}, outs)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].FloatAt(0) != 6 || out[1].FloatAt(0) != 12 {
		t.Errorf("second run results = %v, %v; want 6, 12", out[0], out[1])
	}
}

func TestQueueRoundTripThroughGraph(t *testing.T) {
	g := tf.NewGraph()
	q := g.FIFOQueue("q", 10, []tf.DType{tf.Float32}, []tf.Shape{{2}})
	val := g.Placeholder("v", tf.Float32, tf.Shape{2})
	enq := q.Enqueue(val)
	deq := q.Dequeue()
	size := q.Size()
	if err := g.Err(); err != nil {
		t.Fatal(err)
	}
	s := newSession(t, g)
	for i := 0; i < 3; i++ {
		feed := tf.FromFloat32s(tf.Shape{2}, []float32{float32(i), float32(i * 10)})
		if _, err := s.Run(map[tf.Output]*tf.Tensor{val: feed}, nil, enq); err != nil {
			t.Fatal(err)
		}
	}
	sz, err := s.Fetch1(nil, size)
	if err != nil {
		t.Fatal(err)
	}
	if sz.IntAt(0) != 3 {
		t.Errorf("queue size = %v, want 3", sz)
	}
	// FIFO order.
	for i := 0; i < 3; i++ {
		out, err := s.Fetch1(nil, deq[0])
		if err != nil {
			t.Fatal(err)
		}
		if out.FloatAt(0) != float64(i) {
			t.Errorf("dequeue %d = %v", i, out)
		}
	}
}

func TestQueueDequeueManyBatches(t *testing.T) {
	g := tf.NewGraph()
	q := g.FIFOQueue("q", 10, []tf.DType{tf.Float32}, []tf.Shape{{}})
	val := g.Placeholder("v", tf.Float32, tf.Shape{4})
	enqMany := q.EnqueueMany(val)
	batch := q.DequeueMany(4)
	if err := g.Err(); err != nil {
		t.Fatal(err)
	}
	if !batch[0].Shape().Equal(tf.Shape{4}) {
		t.Errorf("DequeueMany inferred shape %v", batch[0].Shape())
	}
	s := newSession(t, g)
	feed := tf.FromFloat32s(tf.Shape{4}, []float32{5, 6, 7, 8})
	if _, err := s.Run(map[tf.Output]*tf.Tensor{val: feed}, nil, enqMany); err != nil {
		t.Fatal(err)
	}
	out, err := s.Fetch1(nil, batch[0])
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(feed) {
		t.Errorf("DequeueMany = %v, want %v", out, feed)
	}
}

func TestReductionAndShapeOps(t *testing.T) {
	g := tf.NewGraph()
	x := g.Const([][]float32{{1, 2, 3}, {4, 5, 6}})
	mean := g.Mean(x, nil, false)
	rowMax := g.Max(x, []int{1}, false)
	am := g.ArgMax(x, 1)
	tr := g.Transpose(x, nil)
	re := g.Reshape(x, tf.Shape{3, 2})
	sl := g.Slice(x, []int{0, 1}, []int{2, 2})
	oh := g.OneHot(g.Const([]int32{0, 2}), 3, tf.Float32)
	s := newSession(t, g)
	out, err := s.Run(nil, []tf.Output{mean, rowMax, am, tr, re, sl, oh})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].FloatAt(0) != 3.5 {
		t.Errorf("mean = %v", out[0])
	}
	if out[1].FloatAt(1) != 6 {
		t.Errorf("rowMax = %v", out[1])
	}
	if out[2].Int64s()[0] != 2 {
		t.Errorf("argmax = %v", out[2])
	}
	if !out[3].Shape().Equal(tf.Shape{3, 2}) || !out[4].Shape().Equal(tf.Shape{3, 2}) {
		t.Errorf("transpose/reshape shapes: %v %v", out[3].Shape(), out[4].Shape())
	}
	if out[5].FloatAt(0) != 2 {
		t.Errorf("slice = %v", out[5])
	}
	if out[6].FloatAt(0) != 1 || out[6].FloatAt(5) != 1 {
		t.Errorf("one-hot = %v", out[6])
	}
}

func TestRandomOpsAreSeededPerNode(t *testing.T) {
	g := tf.NewGraph()
	g.SetSeed(7)
	a := g.RandomNormal(tf.Float32, tf.Shape{16}, 0, 1)
	b := g.RandomNormal(tf.Float32, tf.Shape{16}, 0, 1)
	s := newSession(t, g)
	out, err := s.Run(nil, []tf.Output{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Equal(out[1]) {
		t.Error("two random nodes produced identical streams")
	}
	// Re-running the same node in a fresh session (fresh RNG state)
	// reproduces the stream.
	s2 := newSession(t, g)
	out2, err := s2.Run(nil, []tf.Output{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if !out[0].Equal(out2[0]) || !out[1].Equal(out2[1]) {
		t.Error("random streams are not reproducible across sessions")
	}
}

func TestGatherAndSparseGradient(t *testing.T) {
	g := tf.NewGraph()
	emb := g.NewVariableFromTensor("emb", tf.FromFloat32s(tf.Shape{4, 2}, []float32{
		1, 1, 2, 2, 3, 3, 4, 4,
	}))
	idx := g.Const([]int32{1, 3})
	rows := g.Gather(emb.Value(), idx)
	loss := g.Sum(rows, nil, false)
	grads, err := g.Gradients([]tf.Output{loss}, []tf.Output{emb.Value()})
	if err != nil {
		t.Fatal(err)
	}
	if grads[0].Sparse == nil {
		t.Fatal("Gather gradient should be sparse")
	}
	s := newSession(t, g)
	if err := s.RunTargets(g.InitOp()); err != nil {
		t.Fatal(err)
	}
	out, err := s.Run(nil, []tf.Output{rows, grads[0].Sparse.Values})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].FloatAt(0) != 2 || out[0].FloatAt(2) != 4 {
		t.Errorf("gathered = %v", out[0])
	}
	for i := 0; i < out[1].NumElements(); i++ {
		if out[1].FloatAt(i) != 1 {
			t.Errorf("sparse grad values = %v", out[1])
		}
	}
}

func TestSelectAndComparisons(t *testing.T) {
	g := tf.NewGraph()
	x := g.Const([]float32{1, 5, 3})
	y := g.Const([]float32{4, 2, 3})
	out := g.Select(g.Greater(x, y), x, y) // element-wise max
	s := newSession(t, g)
	got, err := s.Fetch1(nil, out)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{4, 5, 3}
	for i, v := range got.Float32s() {
		if v != want[i] {
			t.Fatalf("select = %v, want %v", got.Float32s(), want)
		}
	}
}
