package tf_test

// Control-flow gradient tests (§4.1, §3.4): conditionals differentiate as
// their dual (Switch↔Merge on the same predicate), loops as a backward loop
// driven by the forward trip count with stack-saved intermediates. All
// numeric checks run through the shared finite-difference harness.

import (
	"math"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
	"repro/internal/testutil"
	"repro/tf"
)

// condModel builds y = pred ? x² : 3x and returns the loss and gradient
// outputs plus the feeds.
func TestCondGradientBothBranches(t *testing.T) {
	g := tf.NewGraph()
	x := g.Placeholder("x", tf.Float64, tf.Shape{3})
	pred := g.Placeholder("pred", tf.Bool, tf.Shape{})
	outs := g.Cond(pred, []tf.Output{x},
		func(ins []tf.Output) []tf.Output { return []tf.Output{g.Mul(ins[0], ins[0])} },
		func(ins []tf.Output) []tf.Output { return []tf.Output{g.Mul(ins[0], g.Const([]float64{3, 3, 3}))} },
	)
	loss := g.Sum(outs[0], nil, false)
	grads, err := g.DenseGradients([]tf.Output{loss}, []tf.Output{x})
	if err != nil {
		t.Fatal(err)
	}
	s := newSession(t, g)
	point := tf.FromFloat64s(tf.Shape{3}, []float64{0.5, -1.25, 2})
	for _, branch := range []bool{true, false} {
		feeds := func(at *tf.Tensor) map[tf.Output]*tf.Tensor {
			return map[tf.Output]*tf.Tensor{x: at, pred: tf.ScalarBool(branch)}
		}
		name := "else"
		if branch {
			name = "then"
		}
		testutil.GradCheck{
			Eval: func(at *tensor.Tensor) (float64, error) {
				out, err := s.Run(feeds(at), []tf.Output{loss})
				if err != nil {
					return 0, err
				}
				return out[0].FloatAt(0), nil
			},
			Grad: func(at *tensor.Tensor) (*tensor.Tensor, error) {
				out, err := s.Run(feeds(at), []tf.Output{grads[0]})
				if err != nil {
					return nil, err
				}
				return out[0], nil
			},
		}.Run(t, "Cond/"+name, point)
	}
}

// TestWhileGradientFiniteDifference differentiates a three-iteration
// recurrence s ← tanh(s·W) through tf.While w.r.t. both the initial state
// (the Enter path) and the weight matrix (the loop-invariant path, which
// accumulates one contribution per iteration from stack-popped
// intermediates).
func TestWhileGradientFiniteDifference(t *testing.T) {
	g := tf.NewGraph()
	x := g.Placeholder("x", tf.Float64, tf.Shape{1, 3})
	w := g.Placeholder("w", tf.Float64, tf.Shape{3, 3})
	outs := g.While(
		[]tf.Output{g.Const(int32(0)), x},
		[]tf.Output{w},
		func(vars, _ []tf.Output) tf.Output { return g.Less(vars[0], g.Const(int32(3))) },
		func(vars, invs []tf.Output) []tf.Output {
			return []tf.Output{
				g.Add(vars[0], g.Const(int32(1))),
				g.Tanh(g.MatMul(vars[1], invs[0])),
			}
		},
	)
	loss := g.Sum(g.Square(outs[1]), nil, false)
	grads, err := g.DenseGradients([]tf.Output{loss}, []tf.Output{x, w})
	if err != nil {
		t.Fatal(err)
	}
	s := newSession(t, g)
	xv := tf.FromFloat64s(tf.Shape{1, 3}, []float64{0.3, -0.8, 1.1})
	wv := tf.FromFloat64s(tf.Shape{3, 3}, []float64{0.5, -0.2, 0.1, 0.7, 0.3, -0.4, -0.6, 0.2, 0.9})
	for gi, point := range []*tf.Tensor{xv, wv} {
		name := []string{"While/dx", "While/dW"}[gi]
		under := []tf.Output{x, w}[gi]
		feeds := func(at *tf.Tensor) map[tf.Output]*tf.Tensor {
			f := map[tf.Output]*tf.Tensor{x: xv, w: wv}
			f[under] = at
			return f
		}
		testutil.GradCheck{
			Eval: func(at *tensor.Tensor) (float64, error) {
				out, err := s.Run(feeds(at), []tf.Output{loss})
				if err != nil {
					return 0, err
				}
				return out[0].FloatAt(0), nil
			},
			Grad: func(at *tensor.Tensor) (*tensor.Tensor, error) {
				out, err := s.Run(feeds(at), []tf.Output{grads[gi]})
				if err != nil {
					return nil, err
				}
				return out[0], nil
			},
		}.Run(t, name, point)
	}
}

// TestWhileGradientZeroIterations: a loop whose predicate is false from the
// start passes the Exit gradient straight through — dy/dx = 1 for y = x.
func TestWhileGradientZeroIterations(t *testing.T) {
	g := tf.NewGraph()
	x := g.Placeholder("x", tf.Float64, tf.Shape{})
	outs := g.While(
		[]tf.Output{g.Const(int32(5)), x}, nil,
		func(vars, _ []tf.Output) tf.Output { return g.Less(vars[0], g.Const(int32(0))) },
		func(vars, _ []tf.Output) []tf.Output {
			return []tf.Output{g.Add(vars[0], g.Const(int32(1))), g.Mul(vars[1], x)}
		},
	)
	grads, err := g.DenseGradients([]tf.Output{outs[1]}, []tf.Output{x})
	if err != nil {
		t.Fatal(err)
	}
	s := newSession(t, g)
	out, err := s.Run(map[tf.Output]*tf.Tensor{x: tf.FromFloat64s(tf.Shape{}, []float64{2})}, []tf.Output{grads[0]})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0].FloatAt(0)-1) > 1e-12 {
		t.Errorf("zero-iteration dy/dx = %v, want 1", out[0].FloatAt(0))
	}
}

// TestWhileGradientClosedForm: v ← v·x for 3 iterations starting at v = x
// gives y = x⁴ and dy/dx = 4x³ — the closed form doubles as a check that
// invariant contributions and the Enter-path gradient sum correctly.
func TestWhileGradientClosedForm(t *testing.T) {
	g := tf.NewGraph()
	x := g.Placeholder("x", tf.Float64, tf.Shape{})
	outs := g.While(
		[]tf.Output{g.Const(int32(0)), x}, nil,
		func(vars, _ []tf.Output) tf.Output { return g.Less(vars[0], g.Const(int32(3))) },
		func(vars, _ []tf.Output) []tf.Output {
			return []tf.Output{g.Add(vars[0], g.Const(int32(1))), g.Mul(vars[1], x)}
		},
	)
	grads, err := g.DenseGradients([]tf.Output{outs[1]}, []tf.Output{x})
	if err != nil {
		t.Fatal(err)
	}
	s := newSession(t, g)
	for _, xv := range []float64{0.5, 1.3, -0.7} {
		out, err := s.Run(map[tf.Output]*tf.Tensor{x: tf.FromFloat64s(tf.Shape{}, []float64{xv})},
			[]tf.Output{outs[1], grads[0]})
		if err != nil {
			t.Fatal(err)
		}
		if want := math.Pow(xv, 4); math.Abs(out[0].FloatAt(0)-want) > 1e-9 {
			t.Errorf("x=%v: y = %v, want %v", xv, out[0].FloatAt(0), want)
		}
		if want := 4 * math.Pow(xv, 3); math.Abs(out[1].FloatAt(0)-want) > 1e-9 {
			t.Errorf("x=%v: dy/dx = %v, want %v", xv, out[1].FloatAt(0), want)
		}
	}
}

// TestWhileGradientStacksDrained: the backward loop must pop exactly what
// the forward loop pushed — after a gradient step no per-step stack may
// linger in the resource manager.
func TestWhileGradientStacksDrained(t *testing.T) {
	g := tf.NewGraph()
	x := g.Placeholder("x", tf.Float64, tf.Shape{})
	outs := g.While(
		[]tf.Output{g.Const(int32(0)), x}, nil,
		func(vars, _ []tf.Output) tf.Output { return g.Less(vars[0], g.Const(int32(4))) },
		func(vars, _ []tf.Output) []tf.Output {
			return []tf.Output{g.Add(vars[0], g.Const(int32(1))), g.Tanh(g.Mul(vars[1], x))}
		},
	)
	grads, err := g.DenseGradients([]tf.Output{outs[1]}, []tf.Output{x})
	if err != nil {
		t.Fatal(err)
	}
	s := newSession(t, g)
	for i := 0; i < 5; i++ {
		if _, err := s.Run(map[tf.Output]*tf.Tensor{x: tf.FromFloat64s(tf.Shape{}, []float64{0.8})},
			[]tf.Output{grads[0]}); err != nil {
			t.Fatal(err)
		}
	}
	if names := s.Core().Device().Resources().StackNames(); len(names) != 0 {
		t.Errorf("stacks leaked across steps: %v", names)
	}
}

// TestWhileGradientLoopVariantPredicateRejected: a trip count that depends
// on differentiable loop state has no defined gradient; the builder must
// fail naming the offending value instead of treating the count as
// constant.
func TestWhileGradientLoopVariantPredicateRejected(t *testing.T) {
	g := tf.NewGraph()
	x := g.Placeholder("x", tf.Float64, tf.Shape{})
	outs := g.While(
		[]tf.Output{x}, nil,
		// Predicate on the float loop variable itself.
		func(vars, _ []tf.Output) tf.Output { return g.Less(vars[0], g.Const(float64(10))) },
		func(vars, _ []tf.Output) []tf.Output {
			return []tf.Output{g.Add(vars[0], g.Const(float64(1)))}
		},
	)
	if err := g.Err(); err != nil {
		t.Fatal(err)
	}
	_, err := g.DenseGradients([]tf.Output{outs[0]}, []tf.Output{x})
	if err == nil {
		t.Fatal("gradient w.r.t. a loop-variant predicate should be rejected")
	}
	if !strings.Contains(err.Error(), "merge") || !strings.Contains(err.Error(), "predicate") {
		t.Errorf("error should name the loop-variant node and the predicate: %v", err)
	}
}

// TestWhileGradientInteriorValueRejected: differentiating a value captured
// from inside the loop body (rather than an Exit) must fail with an error
// naming the node — never a silently wrong gradient.
func TestWhileGradientInteriorValueRejected(t *testing.T) {
	g := tf.NewGraph()
	x := g.Placeholder("x", tf.Float64, tf.Shape{})
	var interior tf.Output
	g.While(
		[]tf.Output{g.Const(int32(0)), x}, nil,
		func(vars, _ []tf.Output) tf.Output { return g.Less(vars[0], g.Const(int32(3))) },
		func(vars, _ []tf.Output) []tf.Output {
			interior = g.Mul(vars[1], x)
			return []tf.Output{g.Add(vars[0], g.Const(int32(1))), interior}
		},
	)
	if err := g.Err(); err != nil {
		t.Fatal(err)
	}
	_, err := g.DenseGradients([]tf.Output{interior}, []tf.Output{x})
	if err == nil {
		t.Fatal("differentiating a loop-interior value should be rejected")
	}
	if !strings.Contains(err.Error(), "loop frame") {
		t.Errorf("error should mention the loop frame: %v", err)
	}
}

// TestCondInsideWhileGradientRejected: nested control flow in a loop body
// is not differentiable; the error must identify the nested node.
func TestCondInsideWhileGradientRejected(t *testing.T) {
	g := tf.NewGraph()
	x := g.Placeholder("x", tf.Float64, tf.Shape{})
	outs := g.While(
		[]tf.Output{g.Const(int32(0)), x}, nil,
		func(vars, _ []tf.Output) tf.Output { return g.Less(vars[0], g.Const(int32(3))) },
		func(vars, _ []tf.Output) []tf.Output {
			branch := g.Cond(g.Less(vars[1], g.Const(float64(0))), []tf.Output{vars[1]},
				func(ins []tf.Output) []tf.Output { return []tf.Output{g.Neg(ins[0])} },
				func(ins []tf.Output) []tf.Output { return []tf.Output{ins[0]} },
			)
			return []tf.Output{g.Add(vars[0], g.Const(int32(1))), branch[0]}
		},
	)
	if err := g.Err(); err != nil {
		t.Fatal(err)
	}
	_, err := g.DenseGradients([]tf.Output{outs[1]}, []tf.Output{x})
	if err == nil {
		t.Fatal("cond nested in a while body should be rejected")
	}
	if !strings.Contains(err.Error(), "nest") {
		t.Errorf("error should mention nesting: %v", err)
	}
}

// TestNestedCondGradient: conditionals nest freely (each Merge records its
// own predicate), so a cond inside a cond branch differentiates.
func TestNestedCondGradient(t *testing.T) {
	g := tf.NewGraph()
	x := g.Placeholder("x", tf.Float64, tf.Shape{})
	outer := g.Placeholder("po", tf.Bool, tf.Shape{})
	inner := g.Placeholder("pi", tf.Bool, tf.Shape{})
	outs := g.Cond(outer, []tf.Output{x},
		func(ins []tf.Output) []tf.Output {
			nested := g.Cond(inner, []tf.Output{ins[0]},
				func(in2 []tf.Output) []tf.Output { return []tf.Output{g.Mul(in2[0], in2[0])} }, // x²
				func(in2 []tf.Output) []tf.Output { return []tf.Output{g.Neg(in2[0])} },         // -x
			)
			return []tf.Output{nested[0]}
		},
		func(ins []tf.Output) []tf.Output { return []tf.Output{g.Mul(ins[0], g.Const(float64(5)))} }, // 5x
	)
	grads, err := g.DenseGradients([]tf.Output{outs[0]}, []tf.Output{x})
	if err != nil {
		t.Fatal(err)
	}
	s := newSession(t, g)
	run := func(po, pi bool) float64 {
		out, err := s.Run(map[tf.Output]*tf.Tensor{
			x:     tf.FromFloat64s(tf.Shape{}, []float64{1.5}),
			outer: tf.ScalarBool(po),
			inner: tf.ScalarBool(pi),
		}, []tf.Output{grads[0]})
		if err != nil {
			t.Fatal(err)
		}
		return out[0].FloatAt(0)
	}
	if got := run(true, true); math.Abs(got-3) > 1e-12 { // d(x²)/dx at 1.5
		t.Errorf("outer∧inner grad = %v, want 3", got)
	}
	if got := run(true, false); math.Abs(got+1) > 1e-12 { // d(-x)/dx
		t.Errorf("outer∧¬inner grad = %v, want -1", got)
	}
	if got := run(false, true); math.Abs(got-5) > 1e-12 { // d(5x)/dx
		t.Errorf("¬outer grad = %v, want 5", got)
	}
}

// TestCondSecondOrderGradient: the backward conditional records its
// predicate just like the forward one, so it differentiates again —
// y = pred ? x³ : x gives y” = 6x on the then branch and 0 on the else.
func TestCondSecondOrderGradient(t *testing.T) {
	g := tf.NewGraph()
	x := g.Placeholder("x", tf.Float64, tf.Shape{})
	pred := g.Placeholder("pred", tf.Bool, tf.Shape{})
	outs := g.Cond(pred, []tf.Output{x},
		func(ins []tf.Output) []tf.Output { return []tf.Output{g.Mul(g.Mul(ins[0], ins[0]), ins[0])} },
		func(ins []tf.Output) []tf.Output { return []tf.Output{ins[0]} },
	)
	g1, err := g.DenseGradients([]tf.Output{outs[0]}, []tf.Output{x})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := g.DenseGradients([]tf.Output{g1[0]}, []tf.Output{x})
	if err != nil {
		t.Fatalf("second-order cond gradient: %v", err)
	}
	s := newSession(t, g)
	run := func(p bool) float64 {
		out, err := s.Run(map[tf.Output]*tf.Tensor{
			x:    tf.FromFloat64s(tf.Shape{}, []float64{1.5}),
			pred: tf.ScalarBool(p),
		}, []tf.Output{g2[0]})
		if err != nil {
			t.Fatal(err)
		}
		return out[0].FloatAt(0)
	}
	if got := run(true); math.Abs(got-9) > 1e-9 { // 6x at 1.5
		t.Errorf("then branch y'' = %v, want 9", got)
	}
	if got := run(false); math.Abs(got) > 1e-9 {
		t.Errorf("else branch y'' = %v, want 0", got)
	}
}

// TestNestedWhileFrameMetadata pins the frame-membership invariant for
// nested loops: every loop-skeleton Merge must report the frame of the
// Enter feeding it, even though an enclosing loop's construction hooks are
// active while an inner skeleton is built (they would otherwise stamp the
// outer frame first).
func TestNestedWhileFrameMetadata(t *testing.T) {
	g := tf.NewGraph()
	outs := g.While(
		[]tf.Output{g.Const(float32(0)), g.Const(float32(0))}, nil,
		func(vars, _ []tf.Output) tf.Output { return g.Less(vars[0], g.Const(float32(3))) },
		func(vars, _ []tf.Output) []tf.Output {
			inner := g.While(
				[]tf.Output{g.ZerosLike(vars[0]), vars[1]}, nil,
				func(iv, _ []tf.Output) tf.Output { return g.Less(iv[0], g.Const(float32(2))) },
				func(iv, _ []tf.Output) []tf.Output {
					return []tf.Output{g.Add(iv[0], g.Const(float32(1))), g.Add(iv[1], g.Const(float32(1)))}
				},
			)
			return []tf.Output{g.Add(vars[0], g.Const(float32(1))), inner[1]}
		},
	)
	if err := g.Err(); err != nil {
		t.Fatal(err)
	}
	_ = outs
	for _, n := range g.Raw().Nodes() {
		if n.Op() != "Merge" || n.NumInputs() == 0 {
			continue
		}
		enter := n.Input(0).Node
		if enter.Op() != "Enter" {
			continue
		}
		want := graph.NodeFrame(enter)
		if got := graph.NodeFrame(n); got != want {
			t.Errorf("merge %s reports frame %q, its Enter %s is in %q", n.Name(), got, enter.Name(), want)
		}
	}
}

// TestSequentialWhileLoopsGradient: two loops composed in sequence (the
// second consumes the first's Exit value as a captured invariant) are not
// nested control flow; the gradient must chain through both backward
// loops. y = (x²)·x³... precisely: loop1 squares x twice (a = x⁴? no —
// a ← a·x for 2 iters from a = x gives a = x³), loop2 multiplies b ← b·a
// for 2 iters from b = 1, so y = a² = x⁶ and dy/dx = 6x⁵.
func TestSequentialWhileLoopsGradient(t *testing.T) {
	g := tf.NewGraph()
	x := g.Placeholder("x", tf.Float64, tf.Shape{})
	first := g.While(
		[]tf.Output{g.Const(int32(0)), x}, nil,
		func(vars, _ []tf.Output) tf.Output { return g.Less(vars[0], g.Const(int32(2))) },
		func(vars, _ []tf.Output) []tf.Output {
			return []tf.Output{g.Add(vars[0], g.Const(int32(1))), g.Mul(vars[1], x)}
		},
	)
	a := first[1] // x³
	second := g.While(
		[]tf.Output{g.Const(int32(0)), g.Const(float64(1))}, nil,
		func(vars, _ []tf.Output) tf.Output { return g.Less(vars[0], g.Const(int32(2))) },
		func(vars, _ []tf.Output) []tf.Output {
			return []tf.Output{g.Add(vars[0], g.Const(int32(1))), g.Mul(vars[1], a)}
		},
	)
	y := second[1] // a² = x⁶
	grads, err := g.DenseGradients([]tf.Output{y}, []tf.Output{x})
	if err != nil {
		t.Fatalf("sequential loops should differentiate: %v", err)
	}
	s := newSession(t, g)
	for _, xv := range []float64{0.9, 1.2} {
		out, err := s.Run(map[tf.Output]*tf.Tensor{x: tf.FromFloat64s(tf.Shape{}, []float64{xv})},
			[]tf.Output{y, grads[0]})
		if err != nil {
			t.Fatal(err)
		}
		if want := math.Pow(xv, 6); math.Abs(out[0].FloatAt(0)-want) > 1e-9 {
			t.Errorf("x=%v: y = %v, want x⁶ = %v", xv, out[0].FloatAt(0), want)
		}
		if want := 6 * math.Pow(xv, 5); math.Abs(out[1].FloatAt(0)-want) > 1e-9 {
			t.Errorf("x=%v: dy/dx = %v, want 6x⁵ = %v", xv, out[1].FloatAt(0), want)
		}
	}
}

// TestWhileSecondOrderGradientRejected: differentiating a while gradient
// again must say plainly that second-order loop gradients are unsupported,
// not report a structural mismatch in the generated backward frame.
func TestWhileSecondOrderGradientRejected(t *testing.T) {
	g := tf.NewGraph()
	x := g.Placeholder("x", tf.Float64, tf.Shape{})
	outs := g.While(
		[]tf.Output{g.Const(int32(0)), x}, nil,
		func(vars, _ []tf.Output) tf.Output { return g.Less(vars[0], g.Const(int32(3))) },
		func(vars, _ []tf.Output) []tf.Output {
			return []tf.Output{g.Add(vars[0], g.Const(int32(1))), g.Mul(vars[1], x)}
		},
	)
	g1, err := g.DenseGradients([]tf.Output{outs[1]}, []tf.Output{x})
	if err != nil {
		t.Fatal(err)
	}
	_, err = g.DenseGradients([]tf.Output{g1[0]}, []tf.Output{x})
	if err == nil {
		t.Fatal("second-order while gradient should be rejected")
	}
	if !strings.Contains(err.Error(), "second-order") {
		t.Errorf("error should say second-order loop gradients are unsupported: %v", err)
	}
}
