package tf

import (
	"repro/internal/graph"
)

// Variable is a handle to a mutable tensor that persists across steps
// (§3.1): the graph node owns a reference to the device-resident buffer;
// Value() reads it; the assign methods mutate it. The initializer is an
// ordinary Assign op, grouped by Graph.InitOp.
type Variable struct {
	g    *Graph
	node *graph.Node
	read Output
	init *Operation
	name string
}

// NewVariable declares a variable initialized from the given output (for
// example a TruncatedNormal initializer or a Const).
func (gr *Graph) NewVariable(name string, initial Output) *Variable {
	if !initial.Valid() {
		return &Variable{g: gr, name: name}
	}
	spec := initial.ep.Spec()
	node := gr.b.Variable(name, spec.DType, spec.Shape)
	if node == nil {
		return &Variable{g: gr, name: name}
	}
	assign := gr.b.Node("Assign", []graph.Endpoint{node.Out(0), initial.ep}, name+"/init", nil)
	readEp := gr.b.Read(node.Out(0))
	v := &Variable{
		g:    gr,
		node: node,
		read: gr.wrap(readEp),
		init: &Operation{n: assign, g: gr},
		name: name,
	}
	gr.AddInit(assign)
	return v
}

// NewVariableFromTensor declares a variable initialized from a constant.
func (gr *Graph) NewVariableFromTensor(name string, t *Tensor) *Variable {
	return gr.NewVariable(name, gr.Const(t))
}

// Name returns the variable's name.
func (v *Variable) Name() string { return v.name }

// Value returns the variable's current value as a tensor edge (a cached
// Read op).
func (v *Variable) Value() Output { return v.read }

// Ref returns the reference edge, consumed by state ops (Assign, Scatter*,
// Gather-on-ref).
func (v *Variable) Ref() Output {
	if v.node == nil {
		return Output{}
	}
	return v.g.wrap(v.node.Out(0))
}

// Node returns the Variable graph node (companion packages).
func (v *Variable) Node() *graph.Node { return v.node }

// Initializer returns the variable's init op.
func (v *Variable) Initializer() *Operation { return v.init }

// DType returns the variable's element type.
func (v *Variable) DType() DType { return v.node.OutSpec(0).DType }

// Shape returns the variable's static shape.
func (v *Variable) Shape() Shape { return v.node.OutSpec(0).Shape }

// Assign returns an op that replaces the variable's value.
func (v *Variable) Assign(value Output) *Operation {
	return v.g.opNode("Assign", "", nil, v.Ref(), value)
}

// AssignAdd returns an op that adds value into the variable — the canonical
// parameter-server write (§2.2, §4.1).
func (v *Variable) AssignAdd(value Output) *Operation {
	return v.g.opNode("AssignAdd", "", nil, v.Ref(), value)
}

// AssignSub returns an op that subtracts value from the variable.
func (v *Variable) AssignSub(value Output) *Operation {
	return v.g.opNode("AssignSub", "", nil, v.Ref(), value)
}

// ScatterAdd returns an op adding update rows at the given indices — the
// sparse write of the embedding layer (§4.2).
func (v *Variable) ScatterAdd(indices, updates Output) *Operation {
	return v.g.opNode("ScatterAdd", "", nil, v.Ref(), indices, updates)
}

// ScatterSub returns an op subtracting update rows at the given indices.
func (v *Variable) ScatterSub(indices, updates Output) *Operation {
	return v.g.opNode("ScatterSub", "", nil, v.Ref(), indices, updates)
}

// GatherRows reads rows directly from the variable's buffer without a full
// Read copy, so the read can be colocated with a parameter shard (§4.2).
func (v *Variable) GatherRows(indices Output) Output {
	return v.g.op("Gather", nil, v.Ref(), indices)
}
