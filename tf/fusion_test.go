package tf_test

// End-to-end checks of the compile-time optimization pipeline (§5): the
// same model runs through a fused and an unfused session and must produce
// identical losses and gradients, with the fused session actually executing
// FusedMatMul / SoftmaxCrossEntropyWithLogits nodes. A golden snapshot of
// the optimized graph structure pins the pass suite's combined output.

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/tensor"
	"repro/internal/testutil"
	"repro/tf"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// denseSoftmaxModel builds the canonical post-autodiff hot chain the fusion
// pass targets: Relu(MatMul(x, w) + b) fed into a hand-rolled cross-entropy
// (-Σ labels·log(softmax(logits)) over axis 1), summed to a scalar loss.
func denseSoftmaxModel(withGrads bool) (*tf.Graph, tf.Output, tf.Output, []tf.Output, error) {
	g := tf.NewGraph()
	x := g.Placeholder("x", tf.Float64, tf.Shape{4, 3})
	w := g.Const(tf.FromFloat64s(tf.Shape{3, 5}, []float64{
		0.5, -0.2, 0.1, 0.7, 0.3,
		-0.4, 0.6, 0.2, -0.1, 0.9,
		0.8, -0.6, 0.4, 0.2, -0.3,
	}))
	b := g.Const(tf.FromFloat64s(tf.Shape{5}, []float64{0.1, -0.2, 0.3, 0, -0.1}))
	labels := g.Const(tf.FromFloat64s(tf.Shape{4, 5}, []float64{
		1, 0, 0, 0, 0,
		0, 0, 1, 0, 0,
		0, 0, 0, 0, 1,
		0, 1, 0, 0, 0,
	}))
	logits := g.Relu(g.BiasAdd(g.MatMul(x, w), b))
	perExample := g.Neg(g.Sum(g.Mul(labels, g.Log(g.Softmax(logits))), []int{1}, false))
	loss := g.Sum(perExample, nil, false)
	if err := g.Err(); err != nil {
		return nil, tf.Output{}, tf.Output{}, nil, err
	}
	var grads []tf.Output
	if withGrads {
		var err error
		grads, err = g.DenseGradients([]tf.Output{loss}, []tf.Output{x})
		if err != nil {
			return nil, tf.Output{}, tf.Output{}, nil, err
		}
	}
	return g, x, loss, grads, nil
}

// liveOps returns the op-type histogram of non-dead nodes.
func liveOps(g *tf.Graph) map[string]int {
	ops := map[string]int{}
	for _, n := range g.Raw().Nodes() {
		if !n.Dead() {
			ops[n.Op()]++
		}
	}
	return ops
}

// TestFusionInferenceGraphRewrites: with no gradient consumers in the way,
// both hot-chain patterns must fire — the session executes a Relu-activated
// FusedMatMul and a fused cross-entropy — and the fused result must match an
// unfused session bit for bit.
func TestFusionInferenceGraphRewrites(t *testing.T) {
	feed := tf.FromFloat64s(tf.Shape{4, 3}, []float64{
		0.3, -0.8, 1.1, 2.0, 0.1, -0.5, -1.2, 0.7, 0.4, 0.9, -0.3, 0.6,
	})
	run := func(disableFusion bool) (float64, *tf.Graph) {
		g, x, loss, _, err := denseSoftmaxModel(false)
		if err != nil {
			t.Fatal(err)
		}
		s, err := tf.NewSession(g, tf.SessionOptions{DisableFusion: disableFusion})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		out, err := s.Fetch1(map[tf.Output]*tf.Tensor{x: feed}, loss)
		if err != nil {
			t.Fatal(err)
		}
		return out.FloatAt(0), g
	}
	fusedLoss, fusedG := run(false)
	unfusedLoss, unfusedG := run(true)
	if math.Abs(fusedLoss-unfusedLoss) > 1e-12 {
		t.Errorf("fused loss %v != unfused loss %v", fusedLoss, unfusedLoss)
	}

	ops := liveOps(fusedG)
	if ops["FusedMatMul"] != 1 || ops["SoftmaxCrossEntropyWithLogits"] != 1 {
		t.Fatalf("fused graph live ops missing fusions: %v", ops)
	}
	for _, n := range fusedG.Raw().Nodes() {
		if n.Op() == "FusedMatMul" && n.AttrString("activation", "") != "Relu" {
			t.Errorf("inference-only chain should fuse the Relu too, got activation %q",
				n.AttrString("activation", ""))
		}
	}
	if ops := liveOps(unfusedG); ops["FusedMatMul"] != 0 || ops["SoftmaxCrossEntropyWithLogits"] != 0 {
		t.Errorf("DisableFusion session still fused: %v", ops)
	}
}

// TestFusedVsUnfusedGradCheck is the ablation the issue gates on: one model,
// fusion on and off, identical losses and analytic gradients, and the fused
// session's analytic gradient verified against central differences. (With
// backward nodes consuming the chain interiors, only the MatMul+BiasAdd
// prefix is single-consumer, so the fused graph carries an activation-less
// FusedMatMul — the safety conditions, not the pattern list, decide.)
func TestFusedVsUnfusedGradCheck(t *testing.T) {
	type sess struct {
		s     *tf.Session
		x     tf.Output
		loss  tf.Output
		grad  tf.Output
		graph *tf.Graph
	}
	open := func(disableFusion bool) sess {
		g, x, loss, grads, err := denseSoftmaxModel(true)
		if err != nil {
			t.Fatal(err)
		}
		s, err := tf.NewSession(g, tf.SessionOptions{DisableFusion: disableFusion})
		if err != nil {
			t.Fatal(err)
		}
		return sess{s: s, x: x, loss: loss, grad: grads[0], graph: g}
	}
	fused, unfused := open(false), open(true)
	defer fused.s.Close()
	defer unfused.s.Close()

	point := tf.FromFloat64s(tf.Shape{4, 3}, []float64{
		0.3, -0.8, 1.1, 2.0, 0.1, -0.5, -1.2, 0.7, 0.4, 0.9, -0.3, 0.6,
	})
	eval := func(sc sess, at *tensor.Tensor) (loss float64, grad *tensor.Tensor) {
		out, err := sc.s.Run(map[tf.Output]*tf.Tensor{sc.x: at}, []tf.Output{sc.loss, sc.grad})
		if err != nil {
			t.Fatal(err)
		}
		return out[0].FloatAt(0), out[1]
	}
	fl, fg := eval(fused, point)
	ul, ug := eval(unfused, point)
	if math.Abs(fl-ul) > 1e-12 {
		t.Errorf("fused loss %v != unfused loss %v", fl, ul)
	}
	for i := 0; i < fg.NumElements(); i++ {
		if d := math.Abs(fg.FloatAt(i) - ug.FloatAt(i)); d > 1e-12 {
			t.Errorf("grad[%d]: fused %v vs unfused %v", i, fg.FloatAt(i), ug.FloatAt(i))
		}
	}
	if ops := liveOps(fused.graph); ops["FusedMatMul"] == 0 {
		t.Errorf("fused session never produced a live FusedMatMul: %v", ops)
	}

	testutil.GradCheck{
		Eval: func(at *tensor.Tensor) (float64, error) {
			l, _ := eval(fused, at)
			return l, nil
		},
		Grad: func(at *tensor.Tensor) (*tensor.Tensor, error) {
			_, g := eval(fused, at)
			return g, nil
		},
	}.Run(t, "fused", point)
	testutil.GradCheck{
		Eval: func(at *tensor.Tensor) (float64, error) {
			l, _ := eval(unfused, at)
			return l, nil
		},
		Grad: func(at *tensor.Tensor) (*tensor.Tensor, error) {
			_, g := eval(unfused, at)
			return g, nil
		},
	}.Run(t, "unfused", point)
}

// TestFusedMatMulGradient differentiates a graph that already contains a
// FusedMatMul node (the post-optimization scenario: building a loss on an
// optimized inference graph), covering the registered gradient directly.
func TestFusedMatMulGradient(t *testing.T) {
	for _, act := range []string{"", "Relu"} {
		name := "linear"
		if act != "" {
			name = act
		}
		g := tf.NewGraph()
		x := g.Placeholder("x", tf.Float64, tf.Shape{2, 3})
		w := g.Const(tf.FromFloat64s(tf.Shape{3, 4}, []float64{
			0.5, -0.2, 0.1, 0.7, 0.3, -0.4, 0.6, 0.2, -0.1, 0.9, 0.8, -0.6,
		}))
		b := g.Const(tf.FromFloat64s(tf.Shape{4}, []float64{0.1, -0.2, 0.3, 0}))
		fm := g.Builder().Op("FusedMatMul",
			[]graph.Endpoint{x.Unwrap(), w.Unwrap(), b.Unwrap()},
			map[string]any{"activation": act})
		loss := g.Sum(g.Square(g.WrapOutput(fm)), nil, false)
		grads, err := g.DenseGradients([]tf.Output{loss}, []tf.Output{x})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s := newSession(t, g)
		point := tf.FromFloat64s(tf.Shape{2, 3}, []float64{0.4, -1.1, 0.9, 1.6, -0.3, 0.2})
		testutil.GradCheck{
			Eval: func(at *tensor.Tensor) (float64, error) {
				out, err := s.Run(map[tf.Output]*tf.Tensor{x: at}, []tf.Output{loss})
				if err != nil {
					return 0, err
				}
				return out[0].FloatAt(0), nil
			},
			Grad: func(at *tensor.Tensor) (*tensor.Tensor, error) {
				out, err := s.Run(map[tf.Output]*tf.Tensor{x: at}, []tf.Output{grads[0]})
				if err != nil {
					return nil, err
				}
				return out[0], nil
			},
		}.Run(t, "FusedMatMul/"+name, point)
		s.Close()
	}
}

// TestOptimizedGraphGolden runs the full pass pipeline over the inference
// model and compares the surviving (non-dead) graph structure against a
// committed snapshot — the regression net for the whole pass suite. Refresh
// with `make golden` (go test ./tf -run Golden -update).
func TestOptimizedGraphGolden(t *testing.T) {
	g, _, _, _, err := denseSoftmaxModel(false)
	if err != nil {
		t.Fatal(err)
	}
	pipe := graph.NewPipeline(exec.Evaluator("CPU", nil), graph.PipelineOptions{})
	res, err := pipe.Run(g.Raw())
	if err != nil {
		t.Fatal(err)
	}
	if res.Fused == 0 {
		t.Fatal("pipeline reported zero fusions on the canonical model")
	}

	var lines []string
	for _, n := range g.Raw().Nodes() {
		if n.Dead() {
			continue
		}
		parts := make([]string, 0, n.NumInputs()+len(n.ControlInputs()))
		for _, in := range n.Inputs() {
			parts = append(parts, in.String())
		}
		for _, c := range n.ControlInputs() {
			parts = append(parts, "^"+c.Name())
		}
		lines = append(lines, fmt.Sprintf("%s = %s(%s)", n.Name(), n.Op(), strings.Join(parts, ", ")))
	}
	sort.Strings(lines)
	got := strings.Join(lines, "\n") + "\n"

	path := filepath.Join("testdata", "optimized_graph.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `make golden`): %v", err)
	}
	if got != string(want) {
		t.Errorf("optimized graph drifted from golden snapshot.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
