package tf

import (
	"repro/internal/autodiff"
	"repro/internal/graph"
)

// IndexedSlices is a sparse gradient: the dense equivalent has NumRows rows
// and is zero outside Indices. Gradients of Gather stay in this form so
// optimizers can apply sparse Scatter* updates that touch only the rows a
// step actually read (§4.2).
type IndexedSlices struct {
	Indices Output
	Values  Output
	NumRows int
}

// Gradient is one ∂y/∂x result: dense, sparse, or zero (when y does not
// depend on x).
type Gradient struct {
	Dense  Output
	Sparse *IndexedSlices
}

// IsZero reports whether the gradient carries no contribution.
func (g Gradient) IsZero() bool { return !g.Dense.Valid() && g.Sparse == nil }

// Gradients builds the backward graph for ∂sum(ys)/∂xs as user-level
// operations (§4.1) and returns one Gradient per x.
//
// Control flow differentiates too (§3.4): Cond gradients are the dual
// conditional on the predicate each Merge records at construction, and
// While gradients are a backward loop driven by the loop's hidden trip
// counter, consuming stack-saved intermediates — both built from the
// metadata tf.Cond/tf.While stamp on their nodes. Values inside a loop
// frame cannot serve as ys or xs directly; differentiate the loop's Exit
// values (and the outer sources of captured invariants) instead.
func (gr *Graph) Gradients(ys []Output, xs []Output) ([]Gradient, error) {
	if err := gr.Err(); err != nil {
		return nil, err
	}
	yEps := make([]graph.Endpoint, len(ys))
	for i, y := range ys {
		yEps[i] = y.ep
	}
	xEps := make([]graph.Endpoint, len(xs))
	for i, x := range xs {
		xEps[i] = x.ep
	}
	grads, err := autodiff.Gradients(gr.g, yEps, xEps, nil)
	if err != nil {
		return nil, err
	}
	out := make([]Gradient, len(grads))
	for i, g := range grads {
		switch {
		case g.IsZero():
		case g.IsSparse():
			out[i] = Gradient{Sparse: &IndexedSlices{
				Indices: gr.wrap(g.Indices),
				Values:  gr.wrap(g.Values),
				NumRows: g.NumRows,
			}}
		default:
			out[i] = Gradient{Dense: gr.wrap(g.Dense)}
		}
	}
	return out, nil
}

// DenseGradients is Gradients with every sparse result densified — the
// convenient form for models without embeddings.
func (gr *Graph) DenseGradients(ys []Output, xs []Output) ([]Output, error) {
	grads, err := gr.Gradients(ys, xs)
	if err != nil {
		return nil, err
	}
	out := make([]Output, len(grads))
	for i, g := range grads {
		d, err := gr.DensifyGradient(g)
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return out, nil
}

// DensifyGradient converts a sparse gradient to its dense equivalent.
func (gr *Graph) DensifyGradient(g Gradient) (Output, error) {
	if g.Sparse == nil {
		return g.Dense, nil
	}
	ep, err := autodiff.Densify(gr.b, autodiff.Grad{
		Indices: g.Sparse.Indices.ep,
		Values:  g.Sparse.Values.ep,
		NumRows: g.Sparse.NumRows,
	})
	if err != nil {
		return Output{}, err
	}
	return gr.wrap(ep), nil
}
