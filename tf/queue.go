package tf

import (
	"fmt"

	"repro/internal/graph"
)

// Queue wraps a stateful queue operation (§3.1): a bounded queue of tensor
// tuples with blocking enqueue/dequeue, used for input pipelines
// (backpressure) and synchronous training barriers (§4.4).
type Queue struct {
	g     *Graph
	node  *graph.Node
	types []DType
	shape []Shape
}

func (gr *Graph) queueAttrs(name string, capacity int, types []DType, shapes []Shape, extra map[string]any) map[string]any {
	attrs := map[string]any{
		"capacity":        capacity,
		"component_types": types,
		"shared_name":     name,
	}
	if shapes != nil {
		attrs["shapes"] = shapes
	}
	for k, v := range extra {
		attrs[k] = v
	}
	return attrs
}

// FIFOQueue creates a first-in first-out queue holding tuples with the
// given component types (and optional static shapes, required for
// DequeueMany shape inference).
func (gr *Graph) FIFOQueue(name string, capacity int, types []DType, shapes []Shape) *Queue {
	n := gr.b.Node("FIFOQueue", nil, name, gr.queueAttrs(name, capacity, types, shapes, nil))
	return &Queue{g: gr, node: n, types: types, shape: shapes}
}

// RandomShuffleQueue creates a queue whose Dequeue returns a uniformly
// random element, keeping at least minAfterDequeue elements buffered.
func (gr *Graph) RandomShuffleQueue(name string, capacity, minAfterDequeue int, types []DType, shapes []Shape) *Queue {
	n := gr.b.Node("RandomShuffleQueue", nil, name, gr.queueAttrs(name, capacity, types, shapes, map[string]any{
		"min_after_dequeue": minAfterDequeue,
		"seed":              int(gr.g.Seed())*7919 + gr.g.NumNodes() + 1,
	}))
	return &Queue{g: gr, node: n, types: types, shape: shapes}
}

// PaddingFIFOQueue creates a FIFO queue whose DequeueMany pads
// variable-shaped components to a common shape.
func (gr *Graph) PaddingFIFOQueue(name string, capacity int, types []DType) *Queue {
	n := gr.b.Node("PaddingFIFOQueue", nil, name, gr.queueAttrs(name, capacity, types, nil, nil))
	return &Queue{g: gr, node: n, types: types}
}

func (q *Queue) ref() Output {
	if q.node == nil {
		return Output{}
	}
	return q.g.wrap(q.node.Out(0))
}

// Enqueue returns a blocking op that appends one element.
func (q *Queue) Enqueue(components ...Output) *Operation {
	ins := append([]Output{q.ref()}, components...)
	return q.g.opNode("QueueEnqueue", "", nil, ins...)
}

// EnqueueMany returns an op that splits each component along its leading
// dimension and enqueues the rows.
func (q *Queue) EnqueueMany(components ...Output) *Operation {
	ins := append([]Output{q.ref()}, components...)
	return q.g.opNode("QueueEnqueueMany", "", nil, ins...)
}

// Dequeue returns outputs for one dequeued element.
func (q *Queue) Dequeue() []Output {
	n := q.g.opNode("QueueDequeue", "", map[string]any{
		"component_types": q.types, "shapes": q.shape,
	}, q.ref())
	if n.n == nil {
		return make([]Output, len(q.types))
	}
	out := make([]Output, n.NumOutputs())
	for i := range out {
		out[i] = n.Output(i)
	}
	return out
}

// DequeueMany returns outputs for n dequeued elements, stacked along a new
// leading dimension — the standard way to form mini-batches.
func (q *Queue) DequeueMany(n int) []Output {
	node := q.g.opNode("QueueDequeueMany", "", map[string]any{
		"component_types": q.types, "shapes": q.shape, "n": n,
	}, q.ref())
	if node.n == nil {
		return make([]Output, len(q.types))
	}
	out := make([]Output, node.NumOutputs())
	for i := range out {
		out[i] = node.Output(i)
	}
	return out
}

// Close returns an op that closes the queue: enqueues fail, dequeues drain.
func (q *Queue) Close() *Operation {
	return q.g.opNode("QueueClose", "", nil, q.ref())
}

// Size returns the queue's current element count.
func (q *Queue) Size() Output {
	return q.g.op("QueueSize", nil, q.ref())
}

// Components returns the queue's element arity.
func (q *Queue) Components() int { return len(q.types) }

// String names the queue.
func (q *Queue) String() string {
	if q.node == nil {
		return "Queue(<invalid>)"
	}
	return fmt.Sprintf("Queue(%s)", q.node.Name())
}
