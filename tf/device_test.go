package tf_test

import (
	"strings"
	"testing"

	"repro/tf"
)

func TestWithDeviceStampsNodes(t *testing.T) {
	g := tf.NewGraph()
	ps := g.WithDevice("/job:ps")
	c := ps.WithDevice("/task:1").Const(float32(1))
	g.Must()
	if got := c.Op().Node().Device(); got != "/job:ps/task:1" {
		t.Errorf("node device = %q, want /job:ps/task:1", got)
	}
	// The root view stays unconstrained.
	if g.Device() != "" {
		t.Errorf("root device = %q", g.Device())
	}
	free := g.Const(float32(2))
	if got := free.Op().Node().Device(); got != "" {
		t.Errorf("unscoped node device = %q", got)
	}
}

func TestScopedViewsShareGraphState(t *testing.T) {
	g := tf.NewGraph()
	// A variable declared under a device scope registers its initializer
	// with the shared graph state, so the root InitOp runs it.
	v := g.WithDevice("/job:ps/task:0").NewVariableFromTensor("v", tf.Scalar(41))
	sess := newSession(t, g)
	defer sess.Close()
	if err := sess.RunTargets(g.InitOp()); err != nil {
		t.Fatal(err)
	}
	out, err := sess.Fetch1(nil, v.Value())
	if err != nil {
		t.Fatal(err)
	}
	if out.FloatAt(0) != 41 {
		t.Errorf("v = %v, want 41", out.FloatAt(0))
	}
	// Error state is shared too: a failure under one view breaks them all.
	g.WithDevice("/nonsense:0")
	if g.Err() == nil || !strings.Contains(g.Err().Error(), "nonsense") {
		t.Errorf("root Err = %v, want malformed-spec failure from the view", g.Err())
	}
}

func TestColocateWithStampsHints(t *testing.T) {
	g := tf.NewGraph()
	v := g.NewVariableFromTensor("params", tf.Scalar(0))
	slot := g.ColocateWith(v.Ref().Op()).Const(float32(0))
	g.Must()
	hints := slot.Op().Node().Colocation()
	if len(hints) != 1 || hints[0] != "params" {
		t.Errorf("colocation hints = %v, want [params]", hints)
	}
}
