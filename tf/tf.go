// Package tf is the public client library of this TensorFlow (OSDI 2016)
// reproduction: a Go analogue of the reference system's client API. Users
// build a dataflow graph of operations connected by tensor-carrying edges
// (§3.1), then execute arbitrary subgraphs of it — feeds in, fetches out —
// through a Session (§3.2). Differentiation (§4.1), optimizers and
// checkpointing (tf/train), neural-network layers and sharded embeddings
// (tf/nn), and distributed execution (tf/dist) are all layered on top of
// the same graph-construction primitives, in user-level code.
//
// Graph handles support scoped views: WithScope prefixes node names,
// WithDevice stamps (possibly partial) device constraints the placer
// resolves (§3.3), and ColocateWith pins derived state next to the
// operation it shadows. Views share one underlying graph, so they mix
// freely with each other and with sessions.
package tf

import (
	"fmt"

	"repro/internal/build"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// Tensor is the dense n-dimensional array exchanged with the runtime.
type Tensor = tensor.Tensor

// Shape describes tensor extents; -1 marks an unknown dimension.
type Shape = tensor.Shape

// DType identifies a tensor element type.
type DType = tensor.DType

// Element types.
const (
	Bool    = tensor.Bool
	Int32   = tensor.Int32
	Int64   = tensor.Int64
	Float32 = tensor.Float32
	Float64 = tensor.Float64
	String  = tensor.String
)

// Re-exported tensor constructors, so callers never import internal
// packages directly.
var (
	// NewTensor allocates a zero-filled tensor.
	NewTensor = tensor.New
	// Scalar wraps a float32 into a rank-0 tensor.
	Scalar = tensor.Scalar
	// ScalarInt wraps an int32 into a rank-0 tensor.
	ScalarInt = tensor.ScalarInt
	// ScalarBool wraps a bool into a rank-0 tensor.
	ScalarBool = tensor.ScalarBool
	// ScalarString wraps a string into a rank-0 tensor.
	ScalarString = tensor.ScalarString
	// FromFloat32s wraps a float32 slice.
	FromFloat32s = tensor.FromFloat32s
	// FromFloat64s wraps a float64 slice.
	FromFloat64s = tensor.FromFloat64s
	// FromInt32s wraps an int32 slice.
	FromInt32s = tensor.FromInt32s
	// FromInt64s wraps an int64 slice.
	FromInt64s = tensor.FromInt64s
	// FromBools wraps a bool slice.
	FromBools = tensor.FromBools
	// FromStrings wraps a string slice.
	FromStrings = tensor.FromStrings
	// NewRNG creates a seeded random tensor generator.
	NewRNG = tensor.NewRNG
)

// Output is one tensor-carrying edge of the graph: a specific output of an
// operation. Outputs are comparable and usable as map keys (for feeds).
type Output struct {
	ep graph.Endpoint
	g  *Graph
}

// DType returns the element type carried by the edge.
func (o Output) DType() DType { return o.ep.DType() }

// Shape returns the statically inferred (possibly partial) shape.
func (o Output) Shape() Shape { return o.ep.Shape() }

// Op returns the operation producing this output.
func (o Output) Op() *Operation { return &Operation{n: o.ep.Node, g: o.g} }

// Valid reports whether the output refers to a real edge (false after a
// failed build call).
func (o Output) Valid() bool { return o.ep.Node != nil }

// String names the edge as "node:index".
func (o Output) String() string { return o.ep.String() }

// Operation is one vertex of the graph.
type Operation struct {
	n *graph.Node
	g *Graph
}

// Name returns the operation's unique name.
func (op *Operation) Name() string { return op.n.Name() }

// Type returns the operation type (e.g. "MatMul").
func (op *Operation) Type() string { return op.n.Op() }

// Output returns the i-th output edge.
func (op *Operation) Output(i int) Output { return Output{ep: op.n.Out(i), g: op.g} }

// NumOutputs returns the operation's output count.
func (op *Operation) NumOutputs() int { return op.n.NumOutputs() }

// Node exposes the underlying graph node for advanced integrations
// (tf/train, tf/dist).
func (op *Operation) Node() *graph.Node { return op.n }

// Graph accumulates operations. All methods record the first construction
// error; check Err (or use Must) before running.
//
// WithScope, WithDevice and ColocateWith return scoped views of the same
// graph: handles that share the underlying node list, error state and
// variable tracking, but prefix names or stamp device/colocation
// constraints on the nodes they emit (§3.3). Views are cheap and freely
// mixed — a session created from any view runs the whole graph.
type Graph struct {
	g *graph.Graph
	b *build.B
	// st is shared between every scoped view of one graph, so init ops and
	// loop contexts registered under a scope are visible everywhere.
	st *graphState
}

type graphState struct {
	inits []*graph.Node
}

// NewGraph creates an empty graph.
func NewGraph() *Graph {
	g := graph.New()
	return &Graph{g: g, b: build.New(g), st: &graphState{}}
}

// view wraps a derived builder in a Graph handle sharing this graph's state.
func (gr *Graph) view(b *build.B) *Graph {
	return &Graph{g: gr.g, b: b, st: gr.st}
}

// WithScope returns a view whose node names are prefixed with scope (nested
// scopes join with "/"), keeping subgraphs legible in one flat namespace.
func (gr *Graph) WithScope(scope string) *Graph {
	return gr.view(gr.b.WithScope(scope))
}

// WithDevice returns a view that stamps every emitted node with the given
// (possibly partial) device constraint — the analogue of the reference
// API's `with tf.device(...)` scoping (§3.3). Nested scopes refine outer
// ones, the inner winning on conflicting fields; an empty spec clears the
// constraint. The placer resolves partial constraints to concrete devices.
func (gr *Graph) WithDevice(spec string) *Graph {
	return gr.view(gr.b.WithDevice(spec))
}

// Device returns this view's device constraint ("" when unconstrained).
func (gr *Graph) Device() string { return gr.b.Device() }

// ColocateWith returns a view whose nodes carry a colocation hint naming
// op: the placer puts them on op's device, exactly as if they shared a
// reference edge (§3.3). Use it to pin derived state — optimizer slots,
// accumulators — next to the variable it shadows.
func (gr *Graph) ColocateWith(op *Operation) *Graph {
	if op == nil || op.n == nil {
		gr.b.Fail(fmt.Errorf("tf: ColocateWith given an invalid operation"))
		return gr
	}
	return gr.view(gr.b.ColocateWith(op.n))
}

// Err returns the first graph-construction error, if any.
func (gr *Graph) Err() error { return gr.b.Err() }

// Must panics if any graph-construction call failed; it is the conventional
// check after building a model.
func (gr *Graph) Must() *Graph {
	if err := gr.b.Err(); err != nil {
		panic(fmt.Sprintf("tf: graph construction failed: %v", err))
	}
	return gr
}

// SetSeed fixes the graph-level random seed for reproducible initializers.
func (gr *Graph) SetSeed(seed int64) { gr.g.SetSeed(seed) }

// Raw exposes the underlying graph for the companion packages.
func (gr *Graph) Raw() *graph.Graph { return gr.g }

// Builder exposes the low-level node builder for the companion packages.
func (gr *Graph) Builder() *build.B { return gr.b }

// wrap converts an endpoint to an Output.
func (gr *Graph) wrap(ep graph.Endpoint) Output { return Output{ep: ep, g: gr} }

// Unwrap converts an Output back to its endpoint (companion packages).
func (o Output) Unwrap() graph.Endpoint { return o.ep }

// WrapOutput converts an endpoint into an Output of this graph (companion
// packages).
func (gr *Graph) WrapOutput(ep graph.Endpoint) Output { return gr.wrap(ep) }

// AddInit registers an initialization op to be grouped by InitOp.
func (gr *Graph) AddInit(op *graph.Node) { gr.st.inits = append(gr.st.inits, op) }

// InitOp returns a NoOp that runs every registered variable initializer —
// the conventional first step of a training session.
func (gr *Graph) InitOp() *Operation {
	n := gr.b.Group(gr.g.UniqueName("init"), gr.st.inits...)
	return &Operation{n: n, g: gr}
}

// InitNodes returns the registered variable initializers individually, for
// callers that need selective initialization — tf/train's replication layer
// probes each initializer's variable and re-runs only the missing ones, so
// recovering a lost parameter shard never clobbers healthy shards (§4.3).
func (gr *Graph) InitNodes() []*graph.Node {
	return append([]*graph.Node(nil), gr.st.inits...)
}

// Session executes steps of the graph on the local device, caching pruned
// subgraphs per step signature (§3.2, §5).
type Session struct {
	s  *core.Session
	gr *Graph
}

// SessionOptions configures session behavior.
type SessionOptions struct {
	// DisableOptimizations turns off the whole compile-time pass pipeline
	// (constant folding, CSE, kernel fusion — §5).
	DisableOptimizations bool
	// DisableFusion keeps folding and CSE but skips the kernel-fusion
	// pass; fused-vs-unfused ablations flip only this.
	DisableFusion bool
}

// NewSession creates a session. It fails if graph construction recorded an
// error, so mistakes surface before the first step.
func NewSession(gr *Graph, opts ...SessionOptions) (*Session, error) {
	if err := gr.Err(); err != nil {
		return nil, fmt.Errorf("tf: cannot create session on broken graph: %w", err)
	}
	o := core.Options{Optimize: true}
	if len(opts) > 0 {
		if opts[0].DisableOptimizations {
			o.Optimize = false
		}
		o.DisableFusion = opts[0].DisableFusion
	}
	return &Session{s: core.NewSession(gr.g, o), gr: gr}, nil
}

// Core exposes the underlying session for the companion packages.
func (s *Session) Core() *core.Session { return s.s }

// Run executes one step: feeds are bound, targets run for effect, and the
// fetched outputs return in order. Concurrent Runs execute as concurrent
// steps over shared state (§3.2).
func (s *Session) Run(feeds map[Output]*Tensor, fetches []Output, targets ...*Operation) ([]*Tensor, error) {
	var f map[graph.Endpoint]*tensor.Tensor
	if len(feeds) > 0 {
		f = make(map[graph.Endpoint]*tensor.Tensor, len(feeds))
		for o, t := range feeds {
			f[o.ep] = t
		}
	}
	eps := make([]graph.Endpoint, len(fetches))
	for i, o := range fetches {
		if !o.Valid() {
			return nil, fmt.Errorf("tf: fetch %d is invalid (graph error: %v)", i, s.gr.Err())
		}
		eps[i] = o.ep
	}
	ts := make([]*graph.Node, len(targets))
	for i, t := range targets {
		ts[i] = t.n
	}
	return s.s.Run(f, eps, ts)
}

// RunTargets runs target operations for effect only.
func (s *Session) RunTargets(targets ...*Operation) error {
	_, err := s.Run(nil, nil, targets...)
	return err
}

// Fetch1 runs a single-fetch step.
func (s *Session) Fetch1(feeds map[Output]*Tensor, fetch Output, targets ...*Operation) (*Tensor, error) {
	out, err := s.Run(feeds, []Output{fetch}, targets...)
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// Close releases the session's device state.
func (s *Session) Close() { s.s.Close() }
