package tf

import (
	"fmt"

	"repro/internal/build"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/serving"
	"repro/internal/tensor"
)

// Freezing is the export half of the deployment story (§2, §7): a trained
// graph is reduced to a pure predict function — variables folded into
// Consts holding their trained values, the graph pruned to one named
// signature of feeds and fetches, the compile-time optimization pipeline
// run over the result — and serialized into a versioned model directory
// that cmd/tfserve serves.

// SigTensor names one input or output of a predict signature.
type SigTensor struct {
	// Alias is the client-facing name ("image", "logits").
	Alias string
	// Output is the graph edge behind it. Inputs need not be placeholders:
	// any edge Session.Run could feed works, e.g. the dequeue output of an
	// input pipeline.
	Output Output
}

// FreezeOptions configures Freeze.
type FreezeOptions struct {
	// SignatureName names the predict signature; default "predict".
	SignatureName string
	// BatchDim relaxes dimension 0 of every input to -1 in the frozen
	// graph and marks the signature batchable, so the serving tier may
	// stack concurrent requests along axis 0. Requires every input (and,
	// at serve time, every output) to carry a leading batch dimension.
	BatchDim bool
	// DisableOptimizations skips the compile-time pass pipeline on the
	// frozen graph (it runs by default, so serving gets fused kernels).
	DisableOptimizations bool
}

// Frozen is an exported-ready model: the frozen graph plus its signature.
type Frozen struct {
	g   *graph.Graph
	sig serving.Signature
}

// Freeze snapshots the session's initialized variables and builds the
// frozen inference graph for the given signature. The session must have
// run the variables' initializers (or restored a checkpoint) first.
func Freeze(sess *Session, inputs, outputs []SigTensor, opts FreezeOptions) (*Frozen, error) {
	if opts.SignatureName == "" {
		opts.SignatureName = "predict"
	}
	if len(inputs) == 0 || len(outputs) == 0 {
		return nil, fmt.Errorf("tf: freeze needs at least one input and one output")
	}
	spec := graph.FreezeSpec{
		Values: sess.Core().Device().Resources().SnapshotVariables(),
	}
	if opts.BatchDim {
		spec.FeedShapes = make([]tensor.Shape, len(inputs))
	}
	for i, in := range inputs {
		if !in.Output.Valid() {
			return nil, fmt.Errorf("tf: freeze input %q is invalid", in.Alias)
		}
		spec.Feeds = append(spec.Feeds, in.Output.Unwrap())
		if opts.BatchDim {
			shape := in.Output.Shape().Clone()
			if shape.Rank() == 0 {
				return nil, fmt.Errorf("tf: freeze input %q is a scalar; a batchable signature needs a leading batch dimension", in.Alias)
			}
			shape[0] = -1
			spec.FeedShapes[i] = shape
		}
	}
	for _, out := range outputs {
		if !out.Output.Valid() {
			return nil, fmt.Errorf("tf: freeze output %q is invalid", out.Alias)
		}
		spec.Fetches = append(spec.Fetches, out.Output.Unwrap())
	}

	fz, err := graph.Freeze(sess.gr.Raw(), spec)
	if err != nil {
		return nil, err
	}

	fetches := fz.Fetches
	if !opts.DisableOptimizations {
		// Same pipeline a serving session would otherwise run at load time
		// (§5); doing it at export time means every replica serves the
		// already-fused graph.
		pipe := graph.NewPipeline(exec.Evaluator("CPU", nil), graph.PipelineOptions{})
		res, err := pipe.Run(fz.Graph)
		if err != nil {
			return nil, fmt.Errorf("tf: optimizing frozen graph: %w", err)
		}
		remapped := make([]graph.Endpoint, len(fetches))
		for i, f := range fetches {
			remapped[i] = graph.Remap(res.Replaced, f)
		}
		fetches = remapped
	}

	sig := serving.Signature{Name: opts.SignatureName, Batchable: opts.BatchDim}
	for i, in := range inputs {
		ep := fz.Feeds[i]
		sig.Inputs = append(sig.Inputs, serving.TensorSpec{
			Alias: in.Alias,
			Ref:   ep.String(),
			DType: ep.DType().String(),
			Shape: append([]int(nil), ep.Shape()...),
		})
	}
	for i, out := range outputs {
		ep := fetches[i]
		sig.Outputs = append(sig.Outputs, serving.TensorSpec{
			Alias: out.Alias,
			Ref:   ep.String(),
			DType: ep.DType().String(),
			Shape: append([]int(nil), ep.Shape()...),
		})
	}
	return &Frozen{g: fz.Graph, sig: sig}, nil
}

// Graph exposes the frozen graph (tools, tests).
func (f *Frozen) Graph() *graph.Graph { return f.g }

// Signature returns the predict signature.
func (f *Frozen) Signature() serving.Signature { return f.sig }

// Export writes the frozen model as <root>/<name>/<version>/ in the
// serving layout. The version directory appears atomically, so a serving
// process polling the root can never load a half-written model.
func (f *Frozen) Export(root, name string, version int64) error {
	return serving.WriteModel(root, name, version, f.g, f.sig)
}

// Session returns a local session over the frozen graph, with the feed and
// fetch Outputs rebound to it — the in-process way to run a frozen model
// (tests, batch jobs); network serving goes through internal/serving.
func (f *Frozen) Session() (*Session, map[string]Output, error) {
	gr := &Graph{g: f.g, b: build.New(f.g), st: &graphState{}}
	outs := make(map[string]Output, len(f.sig.Inputs)+len(f.sig.Outputs))
	for _, specs := range [][]serving.TensorSpec{f.sig.Inputs, f.sig.Outputs} {
		for _, ts := range specs {
			n := f.g.ByName(endpointName(ts.Ref))
			if n == nil {
				return nil, nil, fmt.Errorf("tf: frozen signature ref %q names no node", ts.Ref)
			}
			outs[ts.Alias] = Output{ep: n.Out(endpointIndex(ts.Ref)), g: gr}
		}
	}
	// The graph was optimized at export; the session skips the pipeline.
	s, err := NewSession(gr, SessionOptions{DisableOptimizations: true})
	if err != nil {
		return nil, nil, err
	}
	return s, outs, nil
}

func endpointName(ref string) string {
	for i := len(ref) - 1; i >= 0; i-- {
		if ref[i] == ':' {
			return ref[:i]
		}
	}
	return ref
}

func endpointIndex(ref string) int {
	idx := 0
	for i := len(ref) - 1; i >= 0; i-- {
		if ref[i] == ':' {
			fmt.Sscanf(ref[i+1:], "%d", &idx)
			break
		}
	}
	return idx
}
