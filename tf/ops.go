package tf

import (
	"repro/internal/build"
	"repro/internal/graph"
)

// op adds a node returning its first output, wrapped.
func (gr *Graph) op(opType string, attrs map[string]any, ins ...Output) Output {
	eps := make([]graph.Endpoint, len(ins))
	for i, in := range ins {
		eps[i] = in.ep
	}
	return gr.wrap(gr.b.Op(opType, eps, attrs))
}

// opNode adds a node returning the Operation.
func (gr *Graph) opNode(opType, name string, attrs map[string]any, ins ...Output) *Operation {
	eps := make([]graph.Endpoint, len(ins))
	for i, in := range ins {
		eps[i] = in.ep
	}
	n := gr.b.Node(opType, eps, name, attrs)
	return &Operation{n: n, g: gr}
}

// Const embeds a constant tensor. Accepted values: *Tensor, scalars (bool,
// int, int32, int64, float32, float64, string), flat slices of those, and
// [][]float32 matrices — everything build.ToTensor converts.
func (gr *Graph) Const(value any) Output {
	t, err := build.ToTensor(value)
	if err != nil {
		gr.b.Fail(err)
		return Output{}
	}
	return gr.op("Const", map[string]any{"value": t, "dtype": t.DType()})
}

// Placeholder declares a value that must be fed at Run time (§3.2).
func (gr *Graph) Placeholder(name string, dt DType, shape Shape) Output {
	n := gr.b.Node("Placeholder", nil, name, map[string]any{"dtype": dt, "shape": shape})
	if n == nil {
		return Output{}
	}
	return gr.wrap(n.Out(0))
}

// --- arithmetic -----------------------------------------------------------

// Add returns x + y with broadcasting.
func (gr *Graph) Add(x, y Output) Output { return gr.op("Add", nil, x, y) }

// Sub returns x - y with broadcasting.
func (gr *Graph) Sub(x, y Output) Output { return gr.op("Sub", nil, x, y) }

// Mul returns x * y with broadcasting.
func (gr *Graph) Mul(x, y Output) Output { return gr.op("Mul", nil, x, y) }

// Div returns x / y with broadcasting.
func (gr *Graph) Div(x, y Output) Output { return gr.op("Div", nil, x, y) }

// Pow returns x ** y with broadcasting.
func (gr *Graph) Pow(x, y Output) Output { return gr.op("Pow", nil, x, y) }

// Maximum returns max(x, y) element-wise.
func (gr *Graph) Maximum(x, y Output) Output { return gr.op("Maximum", nil, x, y) }

// Minimum returns min(x, y) element-wise.
func (gr *Graph) Minimum(x, y Output) Output { return gr.op("Minimum", nil, x, y) }

// SquaredDifference returns (x-y)² element-wise.
func (gr *Graph) SquaredDifference(x, y Output) Output {
	return gr.op("SquaredDifference", nil, x, y)
}

// Neg returns -x.
func (gr *Graph) Neg(x Output) Output { return gr.op("Neg", nil, x) }

// Abs returns |x|.
func (gr *Graph) Abs(x Output) Output { return gr.op("Abs", nil, x) }

// Exp returns eˣ.
func (gr *Graph) Exp(x Output) Output { return gr.op("Exp", nil, x) }

// Log returns ln x.
func (gr *Graph) Log(x Output) Output { return gr.op("Log", nil, x) }

// Sqrt returns √x.
func (gr *Graph) Sqrt(x Output) Output { return gr.op("Sqrt", nil, x) }

// Square returns x².
func (gr *Graph) Square(x Output) Output { return gr.op("Square", nil, x) }

// Tanh returns tanh x.
func (gr *Graph) Tanh(x Output) Output { return gr.op("Tanh", nil, x) }

// Sigmoid returns 1/(1+e⁻ˣ).
func (gr *Graph) Sigmoid(x Output) Output { return gr.op("Sigmoid", nil, x) }

// Relu returns max(x, 0).
func (gr *Graph) Relu(x Output) Output { return gr.op("Relu", nil, x) }

// AddN sums the given outputs.
func (gr *Graph) AddN(xs ...Output) Output {
	if len(xs) == 1 {
		return xs[0]
	}
	return gr.op("AddN", nil, xs...)
}

// MatMul multiplies rank-2 tensors.
func (gr *Graph) MatMul(x, y Output) Output { return gr.op("MatMul", nil, x, y) }

// MatMulT multiplies rank-2 tensors with transpose flags.
func (gr *Graph) MatMulT(x, y Output, transposeX, transposeY bool) Output {
	return gr.op("MatMul", map[string]any{"transpose_a": transposeX, "transpose_b": transposeY}, x, y)
}

// BatchMatMul multiplies rank-3 tensors batch-wise.
func (gr *Graph) BatchMatMul(x, y Output) Output { return gr.op("BatchMatMul", nil, x, y) }

// --- comparisons and selection ---------------------------------------------

// Equal compares element-wise, producing Bool.
func (gr *Graph) Equal(x, y Output) Output { return gr.op("Equal", nil, x, y) }

// NotEqual compares element-wise.
func (gr *Graph) NotEqual(x, y Output) Output { return gr.op("NotEqual", nil, x, y) }

// Less compares element-wise.
func (gr *Graph) Less(x, y Output) Output { return gr.op("Less", nil, x, y) }

// LessEqual compares element-wise.
func (gr *Graph) LessEqual(x, y Output) Output { return gr.op("LessEqual", nil, x, y) }

// Greater compares element-wise.
func (gr *Graph) Greater(x, y Output) Output { return gr.op("Greater", nil, x, y) }

// GreaterEqual compares element-wise.
func (gr *Graph) GreaterEqual(x, y Output) Output { return gr.op("GreaterEqual", nil, x, y) }

// LogicalAnd combines Bool tensors.
func (gr *Graph) LogicalAnd(x, y Output) Output { return gr.op("LogicalAnd", nil, x, y) }

// LogicalOr combines Bool tensors.
func (gr *Graph) LogicalOr(x, y Output) Output { return gr.op("LogicalOr", nil, x, y) }

// LogicalNot inverts a Bool tensor.
func (gr *Graph) LogicalNot(x Output) Output { return gr.op("LogicalNot", nil, x) }

// Select picks x where cond else y.
func (gr *Graph) Select(cond, x, y Output) Output { return gr.op("Select", nil, cond, x, y) }

// --- reductions -------------------------------------------------------------

func reduceAttrs(axes []int, keepDims bool) map[string]any {
	attrs := map[string]any{"keep_dims": keepDims}
	if axes != nil {
		attrs["reduction_indices"] = axes
	}
	return attrs
}

// Sum reduces by summation over axes (nil = all).
func (gr *Graph) Sum(x Output, axes []int, keepDims bool) Output {
	return gr.op("Sum", reduceAttrs(axes, keepDims), x)
}

// Mean reduces by averaging over axes (nil = all).
func (gr *Graph) Mean(x Output, axes []int, keepDims bool) Output {
	return gr.op("Mean", reduceAttrs(axes, keepDims), x)
}

// Max reduces by maximum over axes (nil = all).
func (gr *Graph) Max(x Output, axes []int, keepDims bool) Output {
	return gr.op("Max", reduceAttrs(axes, keepDims), x)
}

// Min reduces by minimum over axes (nil = all).
func (gr *Graph) Min(x Output, axes []int, keepDims bool) Output {
	return gr.op("Min", reduceAttrs(axes, keepDims), x)
}

// ArgMax returns the index of the largest element along axis.
func (gr *Graph) ArgMax(x Output, axis int) Output {
	return gr.op("ArgMax", map[string]any{"axis": axis}, x)
}

// L2Loss returns sum(x²)/2.
func (gr *Graph) L2Loss(x Output) Output { return gr.op("L2Loss", nil, x) }

// --- shape manipulation -------------------------------------------------

// ShapeOf returns the runtime shape of x as an int32 vector.
func (gr *Graph) ShapeOf(x Output) Output { return gr.op("Shape", nil, x) }

// Reshape reshapes x to a static shape (-1 infers one dimension).
func (gr *Graph) Reshape(x Output, shape Shape) Output {
	return gr.wrap(gr.b.ReshapeTo(x.ep, shape))
}

// ReshapeLike reshapes x to the runtime shape of ref.
func (gr *Graph) ReshapeLike(x, ref Output) Output {
	return gr.wrap(gr.b.ReshapeLike(x.ep, ref.ep))
}

// Transpose permutes dimensions (nil perm reverses).
func (gr *Graph) Transpose(x Output, perm []int) Output {
	return gr.wrap(gr.b.Transpose(x.ep, perm))
}

// Concat joins outputs along axis.
func (gr *Graph) Concat(axis int, xs ...Output) Output {
	return gr.op("Concat", map[string]any{"axis": axis}, xs...)
}

// Split divides x along axis into len(sizes) pieces.
func (gr *Graph) Split(x Output, axis int, sizes []int) []Output {
	n := gr.opNode("Split", "", map[string]any{"axis": axis, "sizes": sizes}, x)
	if n.n == nil {
		return make([]Output, len(sizes))
	}
	out := make([]Output, len(sizes))
	for i := range out {
		out[i] = n.Output(i)
	}
	return out
}

// Slice extracts the region [begin, begin+size) (size -1 = to end).
func (gr *Graph) Slice(x Output, begin, size []int) Output {
	return gr.op("Slice", map[string]any{"begin": begin, "size": size}, x)
}

// Pad zero-pads x; paddings is a flat [before0, after0, before1, ...] list.
func (gr *Graph) Pad(x Output, paddings []int) Output {
	return gr.op("Pad", map[string]any{"paddings": paddings}, x)
}

// Tile repeats x by multiples in each dimension.
func (gr *Graph) Tile(x Output, multiples []int) Output {
	return gr.op("Tile", map[string]any{"multiples": multiples}, x)
}

// ExpandDims inserts a size-1 dimension at axis.
func (gr *Graph) ExpandDims(x Output, axis int) Output {
	return gr.op("ExpandDims", map[string]any{"axis": axis}, x)
}

// Squeeze removes size-1 dimensions (all, or just dims when given).
func (gr *Graph) Squeeze(x Output, dims ...int) Output {
	attrs := map[string]any{}
	if len(dims) > 0 {
		attrs["squeeze_dims"] = dims
	}
	return gr.op("Squeeze", attrs, x)
}

// Pack stacks same-shaped outputs along a new leading dimension.
func (gr *Graph) Pack(xs ...Output) Output { return gr.op("Pack", nil, xs...) }

// Unpack splits x along its leading dimension.
func (gr *Graph) Unpack(x Output) []Output {
	n := gr.opNode("Unpack", "", nil, x)
	if n.n == nil {
		return nil
	}
	out := make([]Output, n.NumOutputs())
	for i := range out {
		out[i] = n.Output(i)
	}
	return out
}

// Cast converts x to dtype.
func (gr *Graph) Cast(x Output, dt DType) Output {
	return gr.op("Cast", map[string]any{"DstT": dt}, x)
}

// OneHot expands integer indices to one-hot rows of the given depth.
func (gr *Graph) OneHot(indices Output, depth int, dt DType) Output {
	return gr.op("OneHot", map[string]any{"depth": depth, "dtype": dt}, indices)
}

// Gather reads rows of params selected by indices — the sparse read of the
// embedding layer (§4.2).
func (gr *Graph) Gather(params, indices Output) Output {
	return gr.op("Gather", nil, params, indices)
}

// DynamicPartition routes rows of data into numPartitions outputs (§4.2).
func (gr *Graph) DynamicPartition(data, partitions Output, numPartitions int) []Output {
	n := gr.opNode("DynamicPartition", "", map[string]any{"num_partitions": numPartitions}, data, partitions)
	if n.n == nil {
		return make([]Output, numPartitions)
	}
	out := make([]Output, numPartitions)
	for i := range out {
		out[i] = n.Output(i)
	}
	return out
}

// DynamicStitch inverts DynamicPartition (§4.2, Figure 3).
func (gr *Graph) DynamicStitch(indices, data []Output) Output {
	ins := make([]Output, 0, len(indices)+len(data))
	ins = append(ins, indices...)
	ins = append(ins, data...)
	return gr.op("DynamicStitch", nil, ins...)
}

// --- neural network ---------------------------------------------------------

// Conv2D convolves NHWC input with an HWIO filter.
func (gr *Graph) Conv2D(input, filter Output, strides [2]int, padding string) Output {
	return gr.op("Conv2D", map[string]any{"strides": strides[:], "padding": padding}, input, filter)
}

// MaxPool max-pools NHWC input.
func (gr *Graph) MaxPool(input Output, ksize, strides [2]int, padding string) Output {
	return gr.op("MaxPool", map[string]any{"ksize": ksize[:], "strides": strides[:], "padding": padding}, input)
}

// AvgPool average-pools NHWC input.
func (gr *Graph) AvgPool(input Output, ksize, strides [2]int, padding string) Output {
	return gr.op("AvgPool", map[string]any{"ksize": ksize[:], "strides": strides[:], "padding": padding}, input)
}

// BiasAdd adds a rank-1 bias over the last dimension.
func (gr *Graph) BiasAdd(value, bias Output) Output { return gr.op("BiasAdd", nil, value, bias) }

// Softmax normalizes the last axis into probabilities.
func (gr *Graph) Softmax(x Output) Output { return gr.op("Softmax", nil, x) }

// LogSoftmax returns log(softmax(x)).
func (gr *Graph) LogSoftmax(x Output) Output { return gr.op("LogSoftmax", nil, x) }

// SoftmaxCrossEntropy returns the per-example loss between logits and
// one-hot (or soft) labels.
func (gr *Graph) SoftmaxCrossEntropy(logits, labels Output) Output {
	n := gr.opNode("SoftmaxCrossEntropyWithLogits", "", nil, logits, labels)
	if n.n == nil {
		return Output{}
	}
	return n.Output(0)
}

// SparseSoftmaxCrossEntropy returns the per-example loss between logits and
// integer class labels.
func (gr *Graph) SparseSoftmaxCrossEntropy(logits, labels Output) Output {
	n := gr.opNode("SparseSoftmaxCrossEntropyWithLogits", "", nil, logits, labels)
	if n.n == nil {
		return Output{}
	}
	return n.Output(0)
}

// InTopK reports whether each target class is within the top k predictions.
func (gr *Graph) InTopK(predictions, targets Output, k int) Output {
	return gr.op("InTopK", map[string]any{"k": k}, predictions, targets)
}

// --- random ------------------------------------------------------------------

func (gr *Graph) randomAttrs(dt DType, shape Shape, extra map[string]any) map[string]any {
	attrs := map[string]any{"dtype": dt, "shape": shape, "seed": int(gr.g.Seed())*1000003 + gr.g.NumNodes() + 1}
	for k, v := range extra {
		attrs[k] = v
	}
	return attrs
}

// RandomUniform samples U[lo, hi).
func (gr *Graph) RandomUniform(dt DType, shape Shape, lo, hi float64) Output {
	return gr.op("RandomUniform", gr.randomAttrs(dt, shape, map[string]any{"minval": lo, "maxval": hi}))
}

// RandomNormal samples N(mean, stddev²).
func (gr *Graph) RandomNormal(dt DType, shape Shape, mean, stddev float64) Output {
	return gr.op("RandomStandardNormal", gr.randomAttrs(dt, shape, map[string]any{"mean": mean, "stddev": stddev}))
}

// TruncatedNormal samples N(mean, stddev²) clipped to two standard
// deviations — the standard weight initializer.
func (gr *Graph) TruncatedNormal(dt DType, shape Shape, mean, stddev float64) Output {
	return gr.op("TruncatedNormal", gr.randomAttrs(dt, shape, map[string]any{"mean": mean, "stddev": stddev}))
}

// RandomUniformInt samples integers in [0, maxval).
func (gr *Graph) RandomUniformInt(shape Shape, maxval int) Output {
	return gr.op("RandomUniformInt", gr.randomAttrs(Int32, shape, map[string]any{"maxval": maxval}))
}

// LogUniformCandidateSampler draws sampled-softmax candidates and their
// expected counts (§4.2/§6.4).
func (gr *Graph) LogUniformCandidateSampler(numSampled, rangeMax int) (ids, expected Output) {
	n := gr.opNode("LogUniformCandidateSampler", "",
		gr.randomAttrs(Int32, nil, map[string]any{"num_sampled": numSampled, "range_max": rangeMax}))
	if n.n == nil {
		return Output{}, Output{}
	}
	return n.Output(0), n.Output(1)
}

// --- misc --------------------------------------------------------------------

// BuildOp adds an arbitrary registered operation by type name — the escape
// hatch for companion packages and for users extending the op set with
// their own kernels (§5).
func (gr *Graph) BuildOp(opType, name string, attrs map[string]any, ins ...Output) *Operation {
	eps := make([]graph.Endpoint, len(ins))
	for i, in := range ins {
		eps[i] = in.ep
	}
	n := gr.b.Node(opType, eps, name, attrs)
	return &Operation{n: n, g: gr}
}

// Identity forwards x (useful with control dependencies).
func (gr *Graph) Identity(x Output) Output { return gr.op("Identity", nil, x) }

// IdentityWithControl forwards x after the given operations complete.
func (gr *Graph) IdentityWithControl(x Output, deps ...*Operation) Output {
	ctl := make([]*graph.Node, len(deps))
	for i, d := range deps {
		ctl[i] = d.n
	}
	n := gr.b.Node("Identity", []graph.Endpoint{x.ep}, "", nil, ctl...)
	if n == nil {
		return Output{}
	}
	return gr.wrap(n.Out(0))
}

// StopGradient forwards x but blocks differentiation (§4.1).
func (gr *Graph) StopGradient(x Output) Output { return gr.op("StopGradient", nil, x) }

// ZerosLike returns zeros shaped like x.
func (gr *Graph) ZerosLike(x Output) Output { return gr.op("ZerosLike", nil, x) }

// OnesLike returns ones shaped like x.
func (gr *Graph) OnesLike(x Output) Output { return gr.op("OnesLike", nil, x) }

// Group returns a NoOp that completes after all deps (the standard way to
// bundle update operations).
func (gr *Graph) Group(name string, deps ...*Operation) *Operation {
	ctl := make([]*graph.Node, len(deps))
	for i, d := range deps {
		ctl[i] = d.n
	}
	n := gr.b.Group(name, ctl...)
	return &Operation{n: n, g: gr}
}

// NoOp returns an operation with no effect, usable as a control anchor.
func (gr *Graph) NoOp(name string) *Operation { return gr.opNode("NoOp", name, nil) }
