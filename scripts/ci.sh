#!/bin/sh
# Tier-1 CI gate. The gate itself is defined once, in the Makefile:
#   gofmt -l gating  →  go vet  →  go build  →  go test ./...
#   + race detector on internal/exec and internal/distributed
set -eu
cd "$(dirname "$0")/.."
exec make ci
