#!/bin/sh
# Tier-1 CI gate. The gate itself is defined once, in the Makefile:
#   gofmt -l gating  →  go vet  →  go build  →  go test ./...
#   + race detector on the concurrency-heavy packages (incl. internal/serving)
#   + the chaos/elastic fault-injection suite under -race with a pinned
#     fault schedule (override with CHAOS_SEED=<n>; the seed is printed,
#     and echoed again on failure, so any failing schedule reproduces)
#   + a short -fuzztime smoke run of the serving fuzz targets
#     (FuzzPredictRequest, FuzzModelVersion; override with FUZZTIME=30s)
set -eu
cd "$(dirname "$0")/.."
exec make ci
