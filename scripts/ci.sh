#!/bin/sh
# Tier-1 CI gate. The gate itself is defined once, in the Makefile.
set -eu
cd "$(dirname "$0")/.."
exec make ci
