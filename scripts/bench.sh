#!/bin/sh
# Benchmark harness: runs the root benchmark suite (one iteration per
# benchmark unless overridden) as a compile/run smoke gate, and records a
# machine-readable snapshot of the headline numbers the ROADMAP tracks —
# executor op dispatch rate, end-to-end training-step time (dense and
# through-control-flow), distributed step time, MatMul GFLOPS, the
# fused-vs-unfused training-step ablation, and the serving tier's
# batched-vs-unbatched predict throughput and latency percentiles.
#
# Usage: scripts/bench.sh [benchtime] [output.json] [benchpattern]
#   benchtime     go -benchtime value (default 1x: smoke gate)
#   output        JSON snapshot path (default BENCH_PR10.json)
#   benchpattern  -bench regexp (default ".": whole suite); use a subset
#                 with a longer benchtime to refresh the snapshot stably
set -eu
cd "$(dirname "$0")/.."
BENCHTIME="${1:-1x}"
OUT="${2:-BENCH_PR10.json}"
PATTERN="${3:-.}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench "$PATTERN" -benchtime "$BENCHTIME" -count 1 . | tee "$TMP"

# Fields are emitted only when their benchmark actually ran, so a
# subset-pattern refresh never writes zeros over the snapshot.
awk -v benchtime="$BENCHTIME" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
  /^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
  /^BenchmarkExecutorNullOps/ {
    for (i = 1; i <= NF; i++) if ($(i + 1) == "Mops/s") mops = $i
  }
  /^BenchmarkTrainingStep/      { train_ns = $3 }
  /^BenchmarkWhileTrainingStep/ { while_ns = $3 }
  /^BenchmarkDistributedStep/ { dist_ns = $3 }
  /^BenchmarkReplicatedTrainingStep/ { repl_ns = $3 }
  /^BenchmarkPSApplySyncStep\/chief-apply/                 { sync_chief_ns = $3 }
  /^BenchmarkPSApplySyncStep\/ps-apply-sparse/              { sync_sparse_ns = $3 }
  /^BenchmarkPSApplySyncStep\/ps-apply/ && !/ps-apply-sparse/ { sync_ps_ns = $3 }
  /^BenchmarkMatMul\/256x256/ {
    for (i = 1; i <= NF; i++) if ($(i + 1) == "GFLOPS") gflops = $i
  }
  /^BenchmarkMatMulGFLOPS\/float32\/512x512/ {
    for (i = 1; i <= NF; i++) if ($(i + 1) == "GFLOPS") gflops512 = $i
  }
  /^BenchmarkMatMulGFLOPS\/float64\/256x256/ {
    for (i = 1; i <= NF; i++) if ($(i + 1) == "GFLOPS") gflops64 = $i
  }
  /^BenchmarkAblationFusedKernels\/fused/   { fused_ns = $3 }
  /^BenchmarkAblationFusedKernels\/unfused/ { unfused_ns = $3 }
  /^BenchmarkServePredict\/unbatched/ {
    for (i = 1; i <= NF; i++) {
      if ($(i + 1) == "qps")    serve0_qps = $i
      if ($(i + 1) == "p50-µs") serve0_p50 = $i
      if ($(i + 1) == "p99-µs") serve0_p99 = $i
    }
  }
  /^BenchmarkServePredict\/window=1ms/ {
    for (i = 1; i <= NF; i++) {
      if ($(i + 1) == "qps")    serve1_qps = $i
      if ($(i + 1) == "p50-µs") serve1_p50 = $i
      if ($(i + 1) == "p99-µs") serve1_p99 = $i
    }
  }
  /^BenchmarkServePredict\/window=5ms/ {
    for (i = 1; i <= NF; i++) {
      if ($(i + 1) == "qps")    serve5_qps = $i
      if ($(i + 1) == "p50-µs") serve5_p50 = $i
      if ($(i + 1) == "p99-µs") serve5_p99 = $i
    }
  }
  /^BenchmarkServePredict\/window=10ms/ {
    for (i = 1; i <= NF; i++) {
      if ($(i + 1) == "qps")    serve10_qps = $i
      if ($(i + 1) == "p50-µs") serve10_p50 = $i
      if ($(i + 1) == "p99-µs") serve10_p99 = $i
    }
  }
  END {
    n = 0
    lines[n++] = sprintf("  \"date\": \"%s\"", date)
    lines[n++] = sprintf("  \"benchtime\": \"%s\"", benchtime)
    if (cpu != "")      lines[n++] = sprintf("  \"cpu\": \"%s\"", cpu)
    if (mops != "")     lines[n++] = sprintf("  \"executor_null_ops_mops_per_s\": %s", mops)
    if (train_ns != "") lines[n++] = sprintf("  \"training_step_ns\": %s", train_ns)
    if (while_ns != "") lines[n++] = sprintf("  \"while_training_step_ns\": %s", while_ns)
    if (dist_ns != "")  lines[n++] = sprintf("  \"distributed_step_ns\": %s", dist_ns)
    if (repl_ns != "")  lines[n++] = sprintf("  \"replicated_training_step_ns\": %s", repl_ns)
    if (sync_chief_ns != "")  lines[n++] = sprintf("  \"sync_step_chief_apply_ns\": %s", sync_chief_ns)
    if (sync_ps_ns != "")     lines[n++] = sprintf("  \"sync_step_ps_apply_ns\": %s", sync_ps_ns)
    if (sync_sparse_ns != "") lines[n++] = sprintf("  \"sync_step_ps_apply_sparse_ns\": %s", sync_sparse_ns)
    if (gflops != "")   lines[n++] = sprintf("  \"matmul_256x256_gflops\": %s", gflops)
    if (gflops512 != "") lines[n++] = sprintf("  \"matmul_512x512_gflops\": %s", gflops512)
    if (gflops64 != "")  lines[n++] = sprintf("  \"matmul_f64_256x256_gflops\": %s", gflops64)
    if (fused_ns != "")   lines[n++] = sprintf("  \"fused_training_step_ns\": %s", fused_ns)
    if (unfused_ns != "") lines[n++] = sprintf("  \"unfused_training_step_ns\": %s", unfused_ns)
    if (serve0_qps != "")  lines[n++] = sprintf("  \"serve_unbatched_qps\": %s", serve0_qps)
    if (serve0_p50 != "")  lines[n++] = sprintf("  \"serve_unbatched_p50_us\": %s", serve0_p50)
    if (serve0_p99 != "")  lines[n++] = sprintf("  \"serve_unbatched_p99_us\": %s", serve0_p99)
    if (serve1_qps != "")  lines[n++] = sprintf("  \"serve_window_1ms_qps\": %s", serve1_qps)
    if (serve1_p50 != "")  lines[n++] = sprintf("  \"serve_window_1ms_p50_us\": %s", serve1_p50)
    if (serve1_p99 != "")  lines[n++] = sprintf("  \"serve_window_1ms_p99_us\": %s", serve1_p99)
    if (serve5_qps != "")  lines[n++] = sprintf("  \"serve_window_5ms_qps\": %s", serve5_qps)
    if (serve5_p50 != "")  lines[n++] = sprintf("  \"serve_window_5ms_p50_us\": %s", serve5_p50)
    if (serve5_p99 != "")  lines[n++] = sprintf("  \"serve_window_5ms_p99_us\": %s", serve5_p99)
    if (serve10_qps != "") lines[n++] = sprintf("  \"serve_window_10ms_qps\": %s", serve10_qps)
    if (serve10_p50 != "") lines[n++] = sprintf("  \"serve_window_10ms_p50_us\": %s", serve10_p50)
    if (serve10_p99 != "") lines[n++] = sprintf("  \"serve_window_10ms_p99_us\": %s", serve10_p99)
    printf "{\n"
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n - 1 ? "," : "")
    printf "}\n"
  }' "$TMP" > "$OUT"
echo "bench snapshot written to $OUT"
