GO ?= go
GOFMT ?= gofmt

.PHONY: ci fmt vet build test race race-hot chaos bench bench-smoke fuzz-smoke golden

# Tier-1 gate: everything must be gofmt-clean, vet, build, and test
# green, the concurrency-heavy packages must pass under the race
# detector, the chaos/elastic fault-injection suite must pass under a
# pinned fault schedule, every root benchmark must compile and run
# once, and the serving parsers must survive a short fuzz run.
ci: fmt vet build test race-hot chaos bench-smoke fuzz-smoke

# Fail if any tracked Go file is not gofmt-formatted.
fmt:
	@out="$$($(GOFMT) -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./...

# The executor, the distributed runtime (including the kill-and-recover
# fault-tolerance integration test), the replicated-training layer and the
# client library (whose fused-vs-unfused gradient checks exercise planned
# buffers across concurrent steps) are where concurrent steps, rendezvous,
# abort and retry paths interleave; they run race-enabled on every CI pass
# (full -race stays available as `make race`).
# internal/serving joins the list for the hot-reload-under-load and
# micro-batcher hammer tests.
race-hot:
	$(GO) test -race -count=1 ./internal/exec/... ./internal/distributed/... ./internal/serving/... ./tf/train/... ./tf

# Chaos/elastic fault-injection suite under the race detector with a
# PINNED fault schedule: every drop/delay/duplicate/partition decision
# derives from CHAOS_SEED, so a failure reproduces exactly with the
# seed the failing test logs (rerun as `CHAOS_SEED=<n> make chaos`).
# Covers elastic membership (kill + rejoin at new addresses), heartbeat
# eviction, one-way partitions vs backup workers, duplicate-delivery
# idempotence, and dial-backoff gating.
CHAOS_SEED ?= 20260808
chaos:
	@echo "chaos suite: CHAOS_SEED=$(CHAOS_SEED)"
	@CHAOS_SEED=$(CHAOS_SEED) $(GO) test -race -count=1 \
		-run 'Chaos|Elastic|Partition|Duplicate|Heartbeat|Membership|DialBackoff|DynamicCluster' \
		./internal/distributed/ \
		|| { echo "chaos suite FAILED — reproduce with: CHAOS_SEED=$(CHAOS_SEED) make chaos"; exit 1; }

# Native-fuzz smoke gate over the serving tier's untrusted-input parsers
# (predict request bodies, model version names). Seeds live in
# internal/serving/testdata/fuzz/; raise FUZZTIME for a real hunt.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/serving -run '^$$' -fuzz FuzzPredictRequest -fuzztime $(FUZZTIME)
	$(GO) test ./internal/serving -run '^$$' -fuzz FuzzModelVersion -fuzztime $(FUZZTIME)

# Refresh the committed golden snapshots (tf/testdata/optimized_graph.golden
# and tf/testdata/frozen_graph.golden). Run after deliberately changing a
# pass or the freeze/export path; the golden tests fail on accidental drift.
golden:
	$(GO) test ./tf -run Golden -update -count=1

# Full benchmark pass: runs every root benchmark once and refreshes the
# committed BENCH_PR5.json snapshot (pass BENCHTIME=2s for stable numbers).
BENCHTIME ?= 1x
bench:
	scripts/bench.sh $(BENCHTIME)

# CI smoke gate: same single-iteration pass, snapshot to a scratch path so
# the gate never dirties the working tree.
bench-smoke:
	scripts/bench.sh 1x $${TMPDIR:-/tmp}/bench-smoke.json
