GO ?= go
GOFMT ?= gofmt

.PHONY: ci fmt vet build test race race-hot bench bench-smoke golden

# Tier-1 gate: everything must be gofmt-clean, vet, build, and test
# green, the concurrency-heavy packages must pass under the race
# detector, and every root benchmark must compile and run once.
ci: fmt vet build test race-hot bench-smoke

# Fail if any tracked Go file is not gofmt-formatted.
fmt:
	@out="$$($(GOFMT) -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./...

# The executor, the distributed runtime (including the kill-and-recover
# fault-tolerance integration test), the replicated-training layer and the
# client library (whose fused-vs-unfused gradient checks exercise planned
# buffers across concurrent steps) are where concurrent steps, rendezvous,
# abort and retry paths interleave; they run race-enabled on every CI pass
# (full -race stays available as `make race`).
race-hot:
	$(GO) test -race -count=1 ./internal/exec/... ./internal/distributed/... ./tf/train/... ./tf

# Refresh the committed snapshot of the optimization pipeline's output
# (tf/testdata/optimized_graph.golden). Run after deliberately changing a
# pass; the golden test fails on any accidental drift.
golden:
	$(GO) test ./tf -run TestOptimizedGraphGolden -update -count=1

# Full benchmark pass: runs every root benchmark once and refreshes the
# committed BENCH_PR5.json snapshot (pass BENCHTIME=2s for stable numbers).
BENCHTIME ?= 1x
bench:
	scripts/bench.sh $(BENCHTIME)

# CI smoke gate: same single-iteration pass, snapshot to a scratch path so
# the gate never dirties the working tree.
bench-smoke:
	scripts/bench.sh 1x $${TMPDIR:-/tmp}/bench-smoke.json
