GO ?= go

.PHONY: ci vet build test race bench

# Tier-1 gate: everything must vet, build, and test green.
ci: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
