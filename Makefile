GO ?= go
GOFMT ?= gofmt

.PHONY: ci fmt vet build test race race-hot bench

# Tier-1 gate: everything must be gofmt-clean, vet, build, and test
# green, and the concurrency-heavy packages must pass under the race
# detector.
ci: fmt vet build test race-hot

# Fail if any tracked Go file is not gofmt-formatted.
fmt:
	@out="$$($(GOFMT) -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./...

# The executor and the distributed runtime are where concurrent steps,
# rendezvous and abort paths interleave; they run race-enabled on every
# CI pass (full -race stays available as `make race`).
race-hot:
	$(GO) test -race -count=1 ./internal/exec/... ./internal/distributed/...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
