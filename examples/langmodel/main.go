// Language model: an unrolled LSTM over a Zipf-distributed synthetic corpus
// with a sharded embedding layer (§4.2, Figure 3) and both softmax variants
// of §6.4. The embedding and softmax weights are split into shards exactly
// as a multi-PS deployment would split them, lookups run through
// DynamicPartition → Gather → DynamicStitch, and gradients flow back as
// sparse per-shard scatter updates. The example trains with sampled softmax
// and reports the exact full-softmax loss for comparison.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/tf"
	"repro/tf/nn"
	"repro/tf/train"
)

const (
	vocab      = 2000
	embedDim   = 32
	hidden     = 64
	batch      = 16
	unroll     = 4
	shards     = 4
	numSampled = 64
	steps      = 150
)

func main() {
	g := tf.NewGraph()
	g.SetSeed(3)

	emb, err := nn.NewShardedEmbedding(g, "embedding", vocab, embedDim, shards, nil)
	if err != nil {
		log.Fatal(err)
	}
	cell := nn.NewLSTMCell(g, "lstm", embedDim, hidden)
	soft, err := nn.NewSoftmaxWeights(g, "softmax", vocab, hidden, shards, nil)
	if err != nil {
		log.Fatal(err)
	}

	inputs := g.Placeholder("inputs", tf.Int32, tf.Shape{batch, unroll})
	targets := g.Placeholder("targets", tf.Int32, tf.Shape{batch, unroll})

	// Static unrolling over the sequence (§6.4's LSTM training step).
	h, c := cell.ZeroState(g, batch)
	var sampledLosses, fullLosses []tf.Output
	for s := 0; s < unroll; s++ {
		ids := g.Squeeze(g.Slice(inputs, []int{0, s}, []int{batch, 1}), 1)
		tgt := g.Squeeze(g.Slice(targets, []int{0, s}, []int{batch, 1}), 1)
		x := g.Reshape(emb.Lookup(g, ids), tf.Shape{batch, embedDim})
		h, c = cell.Step(g, x, h, c)
		sampledLosses = append(sampledLosses, soft.SampledSoftmaxLoss(g, h, tgt, numSampled))
		fullLosses = append(fullLosses, soft.FullSoftmaxLoss(g, h, tgt))
	}
	inv := g.Const(float32(1.0 / unroll))
	sampledLoss := g.Mul(g.AddN(sampledLosses...), inv)
	fullLoss := g.Mul(g.AddN(fullLosses...), inv)

	vars := append(append(emb.Vars(), cell.Vars()...), soft.Vars()...)
	opt := &train.Adagrad{LearningRate: 0.3}
	// Train on the sampled estimator — the cheap path of §6.4.
	trainOp, err := opt.Minimize(g, sampledLoss, vars)
	if err != nil {
		log.Fatal(err)
	}

	sess, err := tf.NewSession(g)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	if err := sess.RunTargets(g.InitOp()); err != nil {
		log.Fatal(err)
	}

	corpus := nn.ZipfCorpus(11, vocab, 50_000)
	fmt.Printf("training LSTM LM: vocab %d, %d shards, sampled softmax %d/%d (cost ÷%d)\n",
		vocab, shards, numSampled, vocab, vocab/numSampled)
	for step := 0; step < steps; step++ {
		in, tgt := nn.LMBatch(corpus, step*batch*unroll, batch, unroll)
		feeds := map[tf.Output]*tf.Tensor{inputs: in, targets: tgt}
		if step%30 == 0 {
			out, err := sess.Run(feeds, []tf.Output{sampledLoss, fullLoss}, trainOp)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("step %3d  sampled loss %.4f  full loss %.4f\n",
				step, out[0].FloatAt(0), out[1].FloatAt(0))
			continue
		}
		if _, err := sess.Run(feeds, nil, trainOp); err != nil {
			log.Fatal(err)
		}
	}
	in, tgt := nn.LMBatch(corpus, 0, batch, unroll)
	out, err := sess.Run(map[tf.Output]*tf.Tensor{inputs: in, targets: tgt}, []tf.Output{fullLoss})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final full-softmax loss: %.4f (uniform-predictor baseline ln(%d) = %.4f)\n",
		out[0].FloatAt(0), vocab, math.Log(vocab))

	trainBPTTWhile(corpus)
}

// trainBPTTWhile trains the same next-token task with the recurrence inside
// the dataflow graph (§3.4, §4.1): a truncated-BPTT window runs as a
// tf.While loop whose body applies one tanh-RNN step and accumulates the
// per-timestep cross-entropy, and the gradient is the automatically built
// backward loop — stack-saved intermediates, trip-count-driven — rather
// than a statically unrolled chain. Contrast with the static unrolling in
// main above: the graph here is O(1) in the window length.
func trainBPTTWhile(corpus []int32) {
	const (
		bpttHidden = 48
		bpttSteps  = 60
	)
	g := tf.NewGraph()
	g.SetSeed(7)

	emb := g.NewVariableFromTensor("bptt/embedding",
		tf.NewRNG(21).Uniform(tf.Float32, tf.Shape{vocab, embedDim}, -0.1, 0.1))
	wxh := g.NewVariableFromTensor("bptt/wxh",
		tf.NewRNG(22).Uniform(tf.Float32, tf.Shape{embedDim, bpttHidden}, -0.2, 0.2))
	whh := g.NewVariableFromTensor("bptt/whh",
		tf.NewRNG(23).Uniform(tf.Float32, tf.Shape{bpttHidden, bpttHidden}, -0.2, 0.2))
	bh := g.NewVariableFromTensor("bptt/bh", tf.NewTensor(tf.Float32, tf.Shape{bpttHidden}))
	wsm := g.NewVariableFromTensor("bptt/wsm",
		tf.NewRNG(24).Uniform(tf.Float32, tf.Shape{bpttHidden, vocab}, -0.2, 0.2))
	bsm := g.NewVariableFromTensor("bptt/bsm", tf.NewTensor(tf.Float32, tf.Shape{vocab}))

	inputs := g.Placeholder("bptt/inputs", tf.Int32, tf.Shape{batch, unroll})
	targets := g.Placeholder("bptt/targets", tf.Int32, tf.Shape{batch, unroll})

	// Embed the whole window outside the loop (sparse reads, §4.2), then
	// pack it [unroll, batch, embedDim] so the body can Gather timestep t.
	embVal, wxhVal, whhVal, bhVal, wsmVal, bsmVal :=
		emb.Value(), wxh.Value(), whh.Value(), bh.Value(), wsm.Value(), bsm.Value()
	var stepsIn []tf.Output
	for s := 0; s < unroll; s++ {
		ids := g.Squeeze(g.Slice(inputs, []int{0, s}, []int{batch, 1}), 1)
		stepsIn = append(stepsIn, g.Gather(embVal, ids))
	}
	xseq := g.Pack(stepsIn...)                // [unroll, batch, embedDim]
	tseq := g.Transpose(targets, []int{1, 0}) // [unroll, batch]
	h0 := g.Const(tf.NewTensor(tf.Float32, tf.Shape{batch, bpttHidden}))
	zeroLoss := g.Const(float32(0))

	outs := g.While(
		[]tf.Output{g.Const(int32(0)), h0, zeroLoss},
		[]tf.Output{xseq, tseq},
		func(vars, _ []tf.Output) tf.Output { return g.Less(vars[0], g.Const(int32(unroll))) },
		func(vars, invs []tf.Output) []tf.Output {
			t, h, lossAcc := vars[0], vars[1], vars[2]
			xt := g.Gather(invs[0], t)  // [batch, embedDim]
			tgt := g.Gather(invs[1], t) // [batch]
			h = g.Tanh(g.Add(g.Add(g.MatMul(xt, wxhVal), g.MatMul(h, whhVal)), bhVal))
			logits := g.Add(g.MatMul(h, wsmVal), bsmVal)
			ce := g.Mean(g.SparseSoftmaxCrossEntropy(logits, tgt), nil, false)
			return []tf.Output{g.Add(t, g.Const(int32(1))), h, g.Add(lossAcc, ce)}
		},
	)
	meanLoss := g.Mul(outs[2], g.Const(float32(1.0/unroll)))

	vars := []*tf.Variable{emb, wxh, whh, bh, wsm, bsm}
	opt := &train.Adagrad{LearningRate: 0.3}
	trainOp, err := opt.Minimize(g, meanLoss, vars)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := tf.NewSession(g)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	if err := sess.RunTargets(g.InitOp()); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ntraining tanh-RNN LM by truncated BPTT through tf.While (window %d)\n", unroll)
	var first, last float64
	for step := 0; step < bpttSteps; step++ {
		in, tgt := nn.LMBatch(corpus, step*batch*unroll, batch, unroll)
		feeds := map[tf.Output]*tf.Tensor{inputs: in, targets: tgt}
		out, err := sess.Run(feeds, []tf.Output{meanLoss}, trainOp)
		if err != nil {
			log.Fatal(err)
		}
		last = out[0].FloatAt(0)
		if step == 0 {
			first = last
		}
		if step%15 == 0 {
			fmt.Printf("bptt step %3d  loss %.4f\n", step, last)
		}
	}
	fmt.Printf("bptt final loss %.4f (started %.4f, uniform baseline %.4f)\n",
		last, first, math.Log(vocab))
}
