// Language model: an unrolled LSTM over a Zipf-distributed synthetic corpus
// with a sharded embedding layer (§4.2, Figure 3) and both softmax variants
// of §6.4. The embedding and softmax weights are split into shards exactly
// as a multi-PS deployment would split them, lookups run through
// DynamicPartition → Gather → DynamicStitch, and gradients flow back as
// sparse per-shard scatter updates. The example trains with sampled softmax
// and reports the exact full-softmax loss for comparison.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/tf"
	"repro/tf/nn"
	"repro/tf/train"
)

const (
	vocab      = 2000
	embedDim   = 32
	hidden     = 64
	batch      = 16
	unroll     = 4
	shards     = 4
	numSampled = 64
	steps      = 150
)

func main() {
	g := tf.NewGraph()
	g.SetSeed(3)

	emb, err := nn.NewShardedEmbedding(g, "embedding", vocab, embedDim, shards, nil)
	if err != nil {
		log.Fatal(err)
	}
	cell := nn.NewLSTMCell(g, "lstm", embedDim, hidden)
	soft, err := nn.NewSoftmaxWeights(g, "softmax", vocab, hidden, shards, nil)
	if err != nil {
		log.Fatal(err)
	}

	inputs := g.Placeholder("inputs", tf.Int32, tf.Shape{batch, unroll})
	targets := g.Placeholder("targets", tf.Int32, tf.Shape{batch, unroll})

	// Static unrolling over the sequence (§6.4's LSTM training step).
	h, c := cell.ZeroState(g, batch)
	var sampledLosses, fullLosses []tf.Output
	for s := 0; s < unroll; s++ {
		ids := g.Squeeze(g.Slice(inputs, []int{0, s}, []int{batch, 1}), 1)
		tgt := g.Squeeze(g.Slice(targets, []int{0, s}, []int{batch, 1}), 1)
		x := g.Reshape(emb.Lookup(g, ids), tf.Shape{batch, embedDim})
		h, c = cell.Step(g, x, h, c)
		sampledLosses = append(sampledLosses, soft.SampledSoftmaxLoss(g, h, tgt, numSampled))
		fullLosses = append(fullLosses, soft.FullSoftmaxLoss(g, h, tgt))
	}
	inv := g.Const(float32(1.0 / unroll))
	sampledLoss := g.Mul(g.AddN(sampledLosses...), inv)
	fullLoss := g.Mul(g.AddN(fullLosses...), inv)

	vars := append(append(emb.Vars(), cell.Vars()...), soft.Vars()...)
	opt := &train.Adagrad{LearningRate: 0.3}
	// Train on the sampled estimator — the cheap path of §6.4.
	trainOp, err := opt.Minimize(g, sampledLoss, vars)
	if err != nil {
		log.Fatal(err)
	}

	sess, err := tf.NewSession(g)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	if err := sess.RunTargets(g.InitOp()); err != nil {
		log.Fatal(err)
	}

	corpus := nn.ZipfCorpus(11, vocab, 50_000)
	fmt.Printf("training LSTM LM: vocab %d, %d shards, sampled softmax %d/%d (cost ÷%d)\n",
		vocab, shards, numSampled, vocab, vocab/numSampled)
	for step := 0; step < steps; step++ {
		in, tgt := nn.LMBatch(corpus, step*batch*unroll, batch, unroll)
		feeds := map[tf.Output]*tf.Tensor{inputs: in, targets: tgt}
		if step%30 == 0 {
			out, err := sess.Run(feeds, []tf.Output{sampledLoss, fullLoss}, trainOp)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("step %3d  sampled loss %.4f  full loss %.4f\n",
				step, out[0].FloatAt(0), out[1].FloatAt(0))
			continue
		}
		if _, err := sess.Run(feeds, nil, trainOp); err != nil {
			log.Fatal(err)
		}
	}
	in, tgt := nn.LMBatch(corpus, 0, batch, unroll)
	out, err := sess.Run(map[tf.Output]*tf.Tensor{inputs: in, targets: tgt}, []tf.Output{fullLoss})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final full-softmax loss: %.4f (uniform-predictor baseline ln(%d) = %.4f)\n",
		out[0].FloatAt(0), vocab, math.Log(vocab))
}
