// Distributed training: an in-process cluster of 2 PS tasks and 3 workers
// trains a shared linear model asynchronously (§3.3, Figure 4a). The graph
// is built entirely through the public tf API: WithDevice scopes pin the
// parameters to the PS tasks and each worker's compute subgraph to its own
// task — the `with tf.device(...)` ergonomics of the reference client — and
// the master resolves the partial constraints, partitions the graph at the
// device cuts, and inserts Send/Recv pairs. Each worker runs its own client
// loop, reading the current parameters, computing gradients on its own
// batches, and applying AssignSub updates — the specialized write of the
// parameter-server architecture (§2.2) expressed as plain dataflow. A PS
// task is then restarted mid-training to show the failure model of §4.3.
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/distributed"
	"repro/internal/graph"
	"repro/internal/tensor"
	"repro/tf"
	"repro/tf/nn"
)

const (
	features = 2
	batch    = 16
	steps    = 60
	workers  = 3
	lr       = 0.05
)

func main() {
	spec := distributed.ClusterSpec{
		"ps":     make([]string, 2),
		"worker": make([]string, workers),
	}
	cluster := distributed.NewInProcCluster(spec)

	// One shared graph describes parameters (on the PS tasks) and each
	// worker's compute subgraph; the master places and partitions it
	// (§3.3). Device scopes carry the placement constraints.
	g := tf.NewGraph()
	w := g.WithDevice("/job:ps/task:0").NewVariableFromTensor("w", tf.NewTensor(tf.Float32, tf.Shape{features, 1}))
	b := g.WithDevice("/job:ps/task:1").NewVariableFromTensor("b", tf.NewTensor(tf.Float32, tf.Shape{1}))

	// Per-worker training subgraphs: compute on the worker, update on the
	// PS (§3.3: "parameters are distributed among a set of PS tasks").
	type workerGraph struct {
		x, y    tf.Output
		update  []*graph.Node
		lossOut tf.Output
	}
	wgs := make([]workerGraph, workers)
	for wi := 0; wi < workers; wi++ {
		// Scope the worker's nodes by name and pin them to its task.
		wg := g.WithScope(fmt.Sprintf("worker%d", wi)).WithDevice(distributed.TaskName("worker", wi))
		x := wg.Placeholder("x", tf.Float32, tf.Shape{batch, features})
		y := wg.Placeholder("y", tf.Float32, tf.Shape{batch, 1})
		pred := wg.Add(wg.MatMul(x, w.Value()), b.Value())
		diff := wg.Sub(pred, y)
		loss := wg.Mean(wg.Square(diff), nil, false)

		// Manual gradients of MSE: dW = 2/B·xᵀdiff, db = 2/B·Σdiff. The
		// update ops colocate with their variable (reference edges), so
		// the scaled gradients cross to the PS tasks through Send/Recv.
		scale := wg.Const(float32(2 * lr / batch))
		stepW := wg.Mul(wg.MatMulT(x, diff, true, false), scale)
		stepB := wg.Mul(wg.Sum(diff, []int{0}, false), scale)
		wgs[wi] = workerGraph{
			x: x, y: y,
			update:  []*graph.Node{w.AssignSub(stepW).Node(), b.AssignSub(stepB).Node()},
			lossOut: loss,
		}
	}
	initOp := g.InitOp()
	g.Must()

	master, err := distributed.NewMaster(g.Raw(), spec, cluster.Resolver(), distributed.MasterOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := master.Run(nil, nil, []*graph.Node{initOp.Node()}); err != nil {
		log.Fatal(err)
	}

	// Each worker drives its own asynchronous training loop (Figure 4a):
	// no barriers, updates interleave freely.
	wTrue := []float32{1.5, -2}
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for s := 0; s < steps; s++ {
				xs, ys := nn.LinearData(int64(wi*1000+s), batch, features, wTrue, 0.5, 0.01)
				feeds := map[graph.Endpoint]*tensor.Tensor{wgs[wi].x.Unwrap(): xs, wgs[wi].y.Unwrap(): ys}
				out, err := master.Run(feeds, []graph.Endpoint{wgs[wi].lossOut.Unwrap()}, wgs[wi].update)
				if err != nil {
					log.Fatalf("worker %d: %v", wi, err)
				}
				if s%20 == 0 {
					fmt.Printf("worker %d step %2d loss %.5f\n", wi, s, out[0].FloatAt(0))
				}
			}
		}(wi)
	}
	wg.Wait()

	readW, readB := w.Value().Unwrap(), b.Value().Unwrap()
	out, err := master.Run(nil, []graph.Endpoint{readW, readB}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after async training: w = (%.3f, %.3f) want (1.5, -2); b = %.3f want 0.5\n",
		out[0].FloatAt(0), out[0].FloatAt(1), out[1].FloatAt(0))

	// Failure model (§4.3): restart a PS task; its variables are gone and
	// a fresh client re-initializes (a real deployment would Restore a
	// checkpoint instead).
	fmt.Println("restarting /job:ps/task:0 …")
	cluster.Workers["/job:ps/task:0"].Reset()
	if _, err := master.Run(nil, []graph.Endpoint{readW}, nil); err != nil {
		fmt.Printf("read after restart fails as expected: %v\n", err)
	}
	m2, err := distributed.NewMaster(g.Raw(), spec, cluster.Resolver(), distributed.MasterOptions{})
	if err != nil {
		log.Fatal(err)
	}
	// Only the lost shard is re-initialized; b's trained value on the
	// healthy /job:ps/task:1 survives the failure.
	if _, err := m2.Run(nil, nil, []*graph.Node{w.Initializer().Node()}); err != nil {
		log.Fatal(err)
	}
	out, err = m2.Run(nil, []graph.Endpoint{readW}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: w re-initialized to (%.1f, %.1f)\n", out[0].FloatAt(0), out[0].FloatAt(1))
}
