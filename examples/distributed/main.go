// Distributed training: an in-process cluster of 2 PS tasks and 3 workers
// trains a shared linear model asynchronously (§3.3, Figure 4a). The
// parameters live on the PS tasks; each worker runs its own client loop,
// reading the current parameters, computing gradients on its own batches,
// and applying AssignSub updates — the specialized write of the
// parameter-server architecture (§2.2) expressed as plain dataflow. A PS
// task is then restarted mid-training to show the failure model of §4.3.
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/distributed"
	"repro/internal/graph"
	"repro/internal/tensor"
	"repro/tf/nn"
)

const (
	features = 2
	batch    = 16
	steps    = 60
	workers  = 3
	lr       = 0.05
)

func main() {
	spec := distributed.ClusterSpec{
		"ps":     make([]string, 2),
		"worker": make([]string, workers),
	}
	cluster := distributed.NewInProcCluster(spec)

	// One shared graph describes parameters (on the PS tasks) and each
	// worker's compute subgraph; the master places and partitions it
	// (§3.3).
	g := graph.New()
	w := mustNode(g, "Variable", nil, graph.NodeArgs{
		Name:   "w",
		Attrs:  map[string]any{"dtype": tensor.Float32, "shape": tensor.Shape{features, 1}},
		Device: "/job:ps/task:0",
	})
	b := mustNode(g, "Variable", nil, graph.NodeArgs{
		Name:   "b",
		Attrs:  map[string]any{"dtype": tensor.Float32, "shape": tensor.Shape{1}},
		Device: "/job:ps/task:1",
	})
	wInit := mustNode(g, "Const", nil, graph.NodeArgs{
		Name: "w_init", Attrs: map[string]any{"value": tensor.New(tensor.Float32, tensor.Shape{features, 1})},
	})
	bInit := mustNode(g, "Const", nil, graph.NodeArgs{
		Name: "b_init", Attrs: map[string]any{"value": tensor.New(tensor.Float32, tensor.Shape{1})},
	})
	initW := mustNode(g, "Assign", []graph.Endpoint{w.Out(0), wInit.Out(0)}, graph.NodeArgs{Name: "init_w"})
	initB := mustNode(g, "Assign", []graph.Endpoint{b.Out(0), bInit.Out(0)}, graph.NodeArgs{Name: "init_b"})

	// Per-worker training subgraphs: compute on the worker, update on the
	// PS (§3.3: "parameters are distributed among a set of PS tasks").
	type workerGraph struct {
		x, y    graph.Endpoint
		update  []*graph.Node
		lossOut graph.Endpoint
	}
	wgs := make([]workerGraph, workers)
	for wi := 0; wi < workers; wi++ {
		dev := distributed.TaskName("worker", wi)
		suffix := fmt.Sprintf("_%d", wi)
		x := mustNode(g, "Placeholder", nil, graph.NodeArgs{
			Name: "x" + suffix, Attrs: map[string]any{"dtype": tensor.Float32, "shape": tensor.Shape{batch, features}},
		})
		y := mustNode(g, "Placeholder", nil, graph.NodeArgs{
			Name: "y" + suffix, Attrs: map[string]any{"dtype": tensor.Float32, "shape": tensor.Shape{batch, 1}},
		})
		readW := mustNode(g, "Read", []graph.Endpoint{w.Out(0)}, graph.NodeArgs{Name: "read_w" + suffix})
		readB := mustNode(g, "Read", []graph.Endpoint{b.Out(0)}, graph.NodeArgs{Name: "read_b" + suffix})
		pred := mustNode(g, "Add", []graph.Endpoint{
			mustNode(g, "MatMul", []graph.Endpoint{x.Out(0), readW.Out(0)}, graph.NodeArgs{Name: "mm" + suffix, Device: dev}).Out(0),
			readB.Out(0),
		}, graph.NodeArgs{Name: "pred" + suffix, Device: dev})
		diff := mustNode(g, "Sub", []graph.Endpoint{pred.Out(0), y.Out(0)}, graph.NodeArgs{Name: "diff" + suffix, Device: dev})
		loss := mustNode(g, "Mean", []graph.Endpoint{
			mustNode(g, "Square", []graph.Endpoint{diff.Out(0)}, graph.NodeArgs{Name: "sq" + suffix, Device: dev}).Out(0),
		}, graph.NodeArgs{Name: "loss" + suffix, Device: dev})

		// Manual gradients of MSE: dW = 2/B·xᵀdiff, db = 2/B·Σdiff.
		scale := mustNode(g, "Const", nil, graph.NodeArgs{
			Name: "scale" + suffix, Attrs: map[string]any{"value": tensor.Scalar(2 * lr / batch)},
		})
		gradW := mustNode(g, "MatMul", []graph.Endpoint{x.Out(0), diff.Out(0)}, graph.NodeArgs{
			Name: "gw" + suffix, Attrs: map[string]any{"transpose_a": true}, Device: dev,
		})
		stepW := mustNode(g, "Mul", []graph.Endpoint{gradW.Out(0), scale.Out(0)}, graph.NodeArgs{Name: "sw" + suffix, Device: dev})
		gradB := mustNode(g, "Sum", []graph.Endpoint{diff.Out(0)}, graph.NodeArgs{
			Name: "gb" + suffix, Attrs: map[string]any{"reduction_indices": []int{0}}, Device: dev,
		})
		stepB := mustNode(g, "Mul", []graph.Endpoint{gradB.Out(0), scale.Out(0)}, graph.NodeArgs{Name: "sb" + suffix, Device: dev})
		upW := mustNode(g, "AssignSub", []graph.Endpoint{w.Out(0), stepW.Out(0)}, graph.NodeArgs{Name: "upw" + suffix})
		upB := mustNode(g, "AssignSub", []graph.Endpoint{b.Out(0), stepB.Out(0)}, graph.NodeArgs{Name: "upb" + suffix})
		wgs[wi] = workerGraph{
			x: x.Out(0), y: y.Out(0),
			update:  []*graph.Node{upW, upB},
			lossOut: loss.Out(0),
		}
	}

	master, err := distributed.NewMaster(g, spec, cluster.Resolver(), distributed.MasterOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := master.Run(nil, nil, []*graph.Node{initW, initB}); err != nil {
		log.Fatal(err)
	}

	// Each worker drives its own asynchronous training loop (Figure 4a):
	// no barriers, updates interleave freely.
	wTrue := []float32{1.5, -2}
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for s := 0; s < steps; s++ {
				xs, ys := nn.LinearData(int64(wi*1000+s), batch, features, wTrue, 0.5, 0.01)
				feeds := map[graph.Endpoint]*tensor.Tensor{wgs[wi].x: xs, wgs[wi].y: ys}
				out, err := master.Run(feeds, []graph.Endpoint{wgs[wi].lossOut}, wgs[wi].update)
				if err != nil {
					log.Fatalf("worker %d: %v", wi, err)
				}
				if s%20 == 0 {
					fmt.Printf("worker %d step %2d loss %.5f\n", wi, s, out[0].FloatAt(0))
				}
			}
		}(wi)
	}
	wg.Wait()

	readW := mustNode(g, "Read", []graph.Endpoint{w.Out(0)}, graph.NodeArgs{Name: "final_w"})
	readB := mustNode(g, "Read", []graph.Endpoint{b.Out(0)}, graph.NodeArgs{Name: "final_b"})
	out, err := master.Run(nil, []graph.Endpoint{readW.Out(0), readB.Out(0)}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after async training: w = (%.3f, %.3f) want (1.5, -2); b = %.3f want 0.5\n",
		out[0].FloatAt(0), out[0].FloatAt(1), out[1].FloatAt(0))

	// Failure model (§4.3): restart a PS task; its variables are gone and
	// a fresh client re-initializes (a real deployment would Restore a
	// checkpoint instead).
	fmt.Println("restarting /job:ps/task:0 …")
	cluster.Workers["/job:ps/task:0"].Reset()
	if _, err := master.Run(nil, []graph.Endpoint{readW.Out(0)}, nil); err != nil {
		fmt.Printf("read after restart fails as expected: %v\n", err)
	}
	m2, err := distributed.NewMaster(g, spec, cluster.Resolver(), distributed.MasterOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := m2.Run(nil, nil, []*graph.Node{initW}); err != nil {
		log.Fatal(err)
	}
	out, err = m2.Run(nil, []graph.Endpoint{readW.Out(0)}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: w re-initialized to (%.1f, %.1f)\n", out[0].FloatAt(0), out[0].FloatAt(1))
}

func mustNode(g *graph.Graph, op string, ins []graph.Endpoint, args graph.NodeArgs) *graph.Node {
	n, err := g.AddNode(op, ins, args)
	if err != nil {
		log.Fatalf("AddNode(%s): %v", op, err)
	}
	return n
}
