// Quickstart: build a dataflow graph, differentiate it, and train a linear
// model with gradient descent — the smallest end-to-end tour of the
// execution model: a graph of operations and mutable variables (§3.1),
// partial execution with feeds and fetches (§3.2), user-level automatic
// differentiation (§4.1), and a user-level optimizer.
package main

import (
	"fmt"
	"log"

	"repro/tf"
	"repro/tf/nn"
	"repro/tf/train"
)

func main() {
	const (
		features = 3
		batch    = 32
		steps    = 400
	)
	// Ground truth the model must recover: y = x·(2, -1, 0.5) + 0.25.
	wTrue := []float32{2, -1, 0.5}
	const bTrue = 0.25

	g := tf.NewGraph()
	g.SetSeed(42)

	x := g.Placeholder("x", tf.Float32, tf.Shape{batch, features})
	y := g.Placeholder("y", tf.Float32, tf.Shape{batch, 1})

	w := g.NewVariable("w", g.RandomNormal(tf.Float32, tf.Shape{features, 1}, 0, 0.1))
	b := g.NewVariableFromTensor("b", tf.Scalar(0))

	pred := g.Add(g.MatMul(x, w.Value()), b.Value())
	loss := g.Mean(g.Square(g.Sub(pred, y)), nil, false)

	opt := &train.GradientDescent{LearningRate: 0.1}
	trainOp, err := opt.Minimize(g, loss, []*tf.Variable{w, b})
	if err != nil {
		log.Fatalf("building the training step: %v", err)
	}

	sess, err := tf.NewSession(g)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	if err := sess.RunTargets(g.InitOp()); err != nil {
		log.Fatal(err)
	}

	for step := 0; step < steps; step++ {
		xs, ys := nn.LinearData(int64(step), batch, features, wTrue, bTrue, 0.01)
		out, err := sess.Run(map[tf.Output]*tf.Tensor{x: xs, y: ys}, []tf.Output{loss}, trainOp)
		if err != nil {
			log.Fatal(err)
		}
		if step%100 == 0 {
			fmt.Printf("step %3d  loss %.6f\n", step, out[0].FloatAt(0))
		}
	}

	wv, err := sess.Fetch1(nil, w.Value())
	if err != nil {
		log.Fatal(err)
	}
	bv, err := sess.Fetch1(nil, b.Value())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned w = (%.3f, %.3f, %.3f), b = %.3f\n",
		wv.FloatAt(0), wv.FloatAt(1), wv.FloatAt(2), bv.FloatAt(0))
	fmt.Printf("true    w = (%.3f, %.3f, %.3f), b = %.3f\n",
		wTrue[0], wTrue[1], wTrue[2], bTrue)
}
