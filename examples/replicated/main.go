// Replicated fault-tolerant training (§4.3, §4.4): a TCP cluster of 2
// parameter-server tasks and 3 workers trains a shared linear model through
// tf/train's replication layer. Parameters are sharded across the ps job,
// each worker runs a between-graph replica against its own master, and the
// run demonstrates the paper's core large-scale scenario end to end:
//
//   - asynchronous training (Figure 4a) that survives a worker restart
//     (the master retries the step and re-registers subgraphs) and a PS
//     restart (the fresh task restores its variable shard from the newest
//     checkpoint before serving);
//   - synchronous training with one backup worker (Figure 4c), where each
//     round aggregates the first m of n replica gradients, so a stalled
//     straggler does not gate the barrier.
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/distributed"
	"repro/tf"
	"repro/tf/nn"
	"repro/tf/train"
)

const (
	features = 2
	batch    = 16
	workers  = 3
)

var wTrue = []float32{1.5, -2}

func model(rb *train.ReplicaGraph) (*train.Model, error) {
	x := rb.Placeholder("x", tf.Float32, tf.Shape{batch, features})
	y := rb.Placeholder("y", tf.Float32, tf.Shape{batch, 1})
	w := rb.Variable("w", tf.NewTensor(tf.Float32, tf.Shape{features, 1}))
	b := rb.Variable("b", tf.NewTensor(tf.Float32, tf.Shape{1}))
	pred := rb.Add(rb.MatMul(x, w.Value()), b.Value())
	loss := rb.Mean(rb.Square(rb.Sub(pred, y)), nil, false)
	return &train.Model{Loss: loss, Inputs: map[string]tf.Output{"x": x, "y": y}}, nil
}

func feeds(seed int64) map[string]*tf.Tensor {
	xs, ys := nn.LinearData(seed, batch, features, wTrue, 0.5, 0.01)
	return map[string]*tf.Tensor{"x": xs, "y": ys}
}

func reserveAddr() string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func main() {
	dir, err := os.MkdirTemp("", "replicated-ckpt")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	prefix := filepath.Join(dir, "model")

	// --- cluster bring-up over TCP loopback -----------------------------
	spec := distributed.ClusterSpec{
		"ps":     []string{reserveAddr(), reserveAddr()},
		"worker": make([]string, workers),
	}
	var resolver distributed.Resolver
	indirect := func(task string) (distributed.Transport, error) { return resolver(task) }

	pss := make([]*distributed.PS, len(spec["ps"]))
	for i := range spec["ps"] {
		if pss[i], err = distributed.NewPS(spec, "ps", i, indirect,
			distributed.PSOptions{CheckpointPrefix: prefix}); err != nil {
			log.Fatal(err)
		}
		defer pss[i].Close()
	}
	workerSrvs := make([]*distributed.Server, workers)
	for i := range workerSrvs {
		w := distributed.NewWorker("worker", i, indirect)
		if workerSrvs[i], err = distributed.Serve(w, "127.0.0.1:0"); err != nil {
			log.Fatal(err)
		}
		defer workerSrvs[i].Close()
		spec["worker"][i] = workerSrvs[i].Addr()
	}
	resolver = distributed.TCPResolver(spec)

	// --- phase 1: asynchronous training with failures (§4.3) ------------
	fmt.Println("=== async data-parallel training over TCP, with kill-and-recover ===")
	r, err := train.NewReplicated(train.ReplicatedOptions{
		Cluster: spec, Resolver: resolver,
		Optimizer:        &train.GradientDescent{LearningRate: 0.05},
		CheckpointPrefix: prefix,
		CheckpointEvery:  10,
		StepRetries:      5,
	}, model)
	if err != nil {
		log.Fatal(err)
	}
	startStep, err := r.Init()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training from global step %d\n", startStep)

	const asyncSteps = 90
	for s := 0; s < asyncSteps; s++ {
		switch s {
		case 30:
			fmt.Println("-- killing and restarting /job:worker/task:2 (masters retry the step)")
			addr := workerSrvs[2].Addr()
			workerSrvs[2].Close()
			w := distributed.NewWorker("worker", 2, indirect)
			if workerSrvs[2], err = distributed.Serve(w, addr); err != nil {
				log.Fatal(err)
			}
		case 60:
			if err := r.SaveNow(); err != nil {
				log.Fatal(err)
			}
			fmt.Println("-- killing /job:ps/task:0 and restoring it from its shard checkpoint")
			pss[0].Close()
			if pss[0], err = distributed.NewPS(spec, "ps", 0, indirect,
				distributed.PSOptions{CheckpointPrefix: prefix}); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("   restored at global step %d\n", pss[0].RestoredStep)
		}
		loss, err := r.TrainStep(s%workers, feeds(int64(s)))
		if err != nil {
			log.Fatalf("step %d: %v", s, err)
		}
		if s%15 == 0 || s == asyncSteps-1 {
			fmt.Printf("worker %d step %2d loss %.5f\n", s%workers, s, loss)
		}
	}
	step, err := r.GlobalStep()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("async phase done: global step %d (none lost to the failures)\n", step)
	r.Close()

	// --- phase 2: synchronous training with a backup worker (§4.4) ------
	fmt.Println("\n=== sync training, aggregate first 2 of 3 replicas, one straggler ===")
	rs, err := train.NewReplicated(train.ReplicatedOptions{
		Cluster: spec, Resolver: resolver,
		Optimizer: &train.GradientDescent{LearningRate: 0.05},
		Sync:      true,
		Backups:   1,
	}, model)
	if err != nil {
		log.Fatal(err)
	}
	defer rs.Close()
	syncStart, err := rs.Init()
	if err != nil {
		log.Fatal(err)
	}
	const rounds = 20
	const stall = 50 * time.Millisecond
	stop := make(chan struct{})
	go func() { // replica 2 straggles: it contributes only every `stall`
		for {
			select {
			case <-stop:
				return
			case <-time.After(stall):
			}
			if _, err := rs.TrainStep(2, feeds(7)); err != nil {
				return
			}
		}
	}()
	start := time.Now()
	var wg sync.WaitGroup
	for wi := 0; wi < 2; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for s := 0; s < rounds; s++ {
				loss, err := rs.TrainStep(wi, feeds(int64(wi*1000+s)))
				if err != nil {
					log.Fatalf("sync worker %d: %v", wi, err)
				}
				if wi == 0 && s%5 == 0 {
					fmt.Printf("round %2d loss %.5f\n", s, loss)
				}
			}
		}(wi)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	step, err = rs.GlobalStep()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d synchronous rounds in %v (%.2fms/round) with a %v straggler — m-of-n kept the barrier off the tail\n",
		step-syncStart, elapsed.Round(time.Millisecond), float64(elapsed.Milliseconds())/float64(rounds), stall)
}
