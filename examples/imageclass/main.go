// Image classification: a small convolutional network trained on synthetic
// images through an input pipeline — the computational-throughput
// application of the paper (§6.3). The example exercises the queue-based
// preprocessing pipeline of Figure 1 (a QueueRunner fills a FIFOQueue from
// which training steps dequeue batches), convolution/pooling kernels, the
// Momentum optimizer, and periodic user-level checkpointing (§4.3).
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/tf"
	"repro/tf/nn"
	"repro/tf/train"
)

const (
	batch   = 16
	imgSize = 8
	classes = 4
	steps   = 120
)

func main() {
	g := tf.NewGraph()
	g.SetSeed(7)

	// Input pipeline (Figure 1): a producer enqueues preprocessed
	// examples; the training subgraph dequeues batches.
	q := g.FIFOQueue("input", 64,
		[]tf.DType{tf.Float32, tf.Int32},
		[]tf.Shape{{imgSize, imgSize, 1}, {}})
	rawImg := g.Placeholder("raw_img", tf.Float32, tf.Shape{batch, imgSize, imgSize, 1})
	rawLbl := g.Placeholder("raw_lbl", tf.Int32, tf.Shape{batch})
	enqueue := q.EnqueueMany(rawImg, rawLbl)
	batchOuts := q.DequeueMany(batch)
	images, labels := batchOuts[0], batchOuts[1]

	// Model: conv → pool → conv → pool → dense head.
	conv1, v1 := nn.Conv2DLayer(g, "conv1", images, 8, 3, 3, [2]int{1, 1}, "SAME", nn.ReLU)
	pool1 := g.MaxPool(conv1, [2]int{2, 2}, [2]int{2, 2}, "VALID")
	conv2, v2 := nn.Conv2DLayer(g, "conv2", pool1, 16, 3, 3, [2]int{1, 1}, "SAME", nn.ReLU)
	pool2 := g.MaxPool(conv2, [2]int{2, 2}, [2]int{2, 2}, "VALID")
	logits, v3 := nn.Dense(g, "head", nn.Flatten(g, pool2), classes, nn.Linear)

	vars := append(append(v1, v2...), v3...)
	loss := nn.CrossEntropyLoss(g, logits, labels, 1e-4, vars)
	acc := nn.Accuracy(g, logits, labels)

	opt := &train.Momentum{LearningRate: 0.03, Decay: 0.9}
	trainOp, err := opt.Minimize(g, loss, vars)
	if err != nil {
		log.Fatal(err)
	}
	saver, err := train.NewSaver(g, vars)
	if err != nil {
		log.Fatal(err)
	}

	sess, err := tf.NewSession(g)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	if err := sess.RunTargets(g.InitOp()); err != nil {
		log.Fatal(err)
	}

	ckptDir, err := os.MkdirTemp("", "imageclass")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(ckptDir)
	prefix := filepath.Join(ckptDir, "model")

	// Producer goroutine: synthesizes and enqueues examples, with
	// backpressure from the bounded queue (§3.1).
	coord := train.NewCoordinator()
	coord.Go(func() error {
		for i := 0; !coord.ShouldStop(); i++ {
			xs, ys := nn.SyntheticImages(nil, int64(i%16), batch, imgSize, imgSize, 1, classes)
			if _, err := sess.Run(map[tf.Output]*tf.Tensor{rawImg: xs, rawLbl: ys}, nil, enqueue); err != nil {
				return nil // queue closed at shutdown
			}
		}
		return nil
	})

	for step := 1; step <= steps; step++ {
		out, err := sess.Run(nil, []tf.Output{loss, acc}, trainOp)
		if err != nil {
			log.Fatal(err)
		}
		if step%20 == 0 {
			fmt.Printf("step %3d  loss %.4f  accuracy %.2f\n",
				step, out[0].FloatAt(0), out[1].FloatAt(0))
		}
		if step%50 == 0 {
			path, err := saver.SaveStep(sess, prefix, step)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("checkpoint written: %s\n", filepath.Base(path))
		}
	}

	// Simulate a restart: fresh session, restore the latest checkpoint
	// (§4.3: "when the client starts up, it attempts to Restore the
	// latest checkpoint").
	sess2, err := tf.NewSession(g)
	if err != nil {
		log.Fatal(err)
	}
	defer sess2.Close()
	found, err := saver.RestoreLatest(sess2, prefix)
	if err != nil || !found {
		log.Fatalf("restore failed: found=%t err=%v", found, err)
	}
	xs, ys := nn.SyntheticImages(nil, 99, batch, imgSize, imgSize, 1, classes)
	feeds := map[tf.Output]*tf.Tensor{images: xs, labels: ys}
	out, err := sess2.Run(feeds, []tf.Output{acc})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored model accuracy on fresh batch: %.2f\n", out[0].FloatAt(0))

	coord.RequestStop(nil)
	_ = sess.RunTargets(q.Close())
	if err := coord.Join(); err != nil {
		log.Fatal(err)
	}
}
