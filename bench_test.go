// Package repro_test is the benchmark harness at the root of the
// repository: one benchmark per table and figure of the paper's evaluation
// (§6), a set of real-runtime microbenchmarks, and ablations of the design
// choices described in ARCHITECTURE.md (see "Executor scheduling and
// memory reuse"). cmd/tfbench prints the same results as formatted tables;
// EXPERIMENTS.md records a snapshot, and scripts/bench.sh regenerates the
// machine-readable BENCH_PR7.json.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/distributed"
	"repro/internal/graph"
	"repro/internal/simcluster"
	"repro/internal/tensor"
	"repro/tf"
	"repro/tf/nn"
	"repro/tf/train"
)

// BenchmarkTable1SingleMachine regenerates Table 1 (§6.1): training step
// time per framework per model from the layer-level GPU cost model. The
// reported metric is the predicted step time in milliseconds.
func BenchmarkTable1SingleMachine(b *testing.B) {
	models := simcluster.BenchmarkModels()
	for _, f := range simcluster.BenchmarkFrameworks() {
		for _, m := range models {
			b.Run(fmt.Sprintf("%s/%s", f.Name, m.Name), func(b *testing.B) {
				var t float64
				for i := 0; i < b.N; i++ {
					t = simcluster.StepTime(m, f)
				}
				b.ReportMetric(t*1000, "step-ms")
				b.ReportMetric(m.TrainFLOPs()/1e9, "GFLOP/step")
			})
		}
	}
}

// BenchmarkFigure6NullStep regenerates Figure 6 (§6.2): median null-step
// time under synchronous replication with 16 PS tasks.
func BenchmarkFigure6NullStep(b *testing.B) {
	curves := []struct {
		label string
		kind  string
		bytes float64
	}{
		{"Scalar", "scalar", 0},
		{"Sparse1GB", "sparse", 1e9},
		{"Sparse16GB", "sparse", 16e9},
		{"Dense100MB", "dense", 100e6},
		{"Dense1GB", "dense", 1e9},
	}
	for _, c := range curves {
		for _, workers := range []int{1, 2, 5, 10, 25, 50, 100} {
			b.Run(fmt.Sprintf("%s/workers=%d", c.label, workers), func(b *testing.B) {
				var med float64
				for i := 0; i < b.N; i++ {
					st := simcluster.SimulateCluster(simcluster.Figure6Config(workers, c.kind, c.bytes), 10)
					med = st.Median()
				}
				b.ReportMetric(med*1000, "step-ms")
				b.ReportMetric(1/med, "batches/s")
			})
		}
	}
}

// BenchmarkFigure7Throughput regenerates Figure 7 (§6.3): Inception-v3
// training throughput and step-time percentiles for asynchronous and
// synchronous coordination.
func BenchmarkFigure7Throughput(b *testing.B) {
	for _, workers := range []int{25, 50, 100, 200} {
		for _, sync := range []bool{false, true} {
			mode := "async"
			if sync {
				mode = "sync"
			}
			b.Run(fmt.Sprintf("workers=%d/%s", workers, mode), func(b *testing.B) {
				var st simcluster.StepStats
				for i := 0; i < b.N; i++ {
					st = simcluster.SimulateCluster(simcluster.InceptionConfig(workers, 0, sync), 10)
				}
				imgs := st.Throughput * 32
				if sync {
					imgs = st.Throughput * float64(workers) * 32
				}
				b.ReportMetric(imgs, "images/s")
				b.ReportMetric(st.Median(), "step-p50-s")
				b.ReportMetric(st.P90(), "step-p90-s")
			})
		}
	}
}

// BenchmarkFigure8BackupWorkers regenerates Figure 8 (§6.3): the effect of
// 0–5 backup workers on the 50-worker synchronous step, with the paper's
// normalized speedup t(0)/t(b)·50/(50+b).
func BenchmarkFigure8BackupWorkers(b *testing.B) {
	base := simcluster.SimulateCluster(simcluster.InceptionConfig(50, 0, true), 30).Median()
	for backups := 0; backups <= 5; backups++ {
		b.Run(fmt.Sprintf("backups=%d", backups), func(b *testing.B) {
			var med float64
			for i := 0; i < b.N; i++ {
				med = simcluster.SimulateCluster(simcluster.InceptionConfig(50, backups, true), 30).Median()
			}
			b.ReportMetric(med, "step-s")
			b.ReportMetric(base/med*50/float64(50+backups), "norm-speedup")
		})
	}
}

// BenchmarkFigure9LanguageModel regenerates Figure 9 (§6.4): language-model
// training throughput for full vs sampled softmax across PS task counts.
func BenchmarkFigure9LanguageModel(b *testing.B) {
	for _, workers := range []int{4, 32, 256} {
		for _, sampled := range []bool{false, true} {
			mode := "full"
			if sampled {
				mode = "sampled"
			}
			for _, ps := range []int{1, 4, 16, 32} {
				b.Run(fmt.Sprintf("workers=%d/%s/ps=%d", workers, mode, ps), func(b *testing.B) {
					var tput float64
					for i := 0; i < b.N; i++ {
						tput = simcluster.SimulateLM(simcluster.DefaultLMConfig(workers, ps, sampled), 5)
					}
					b.ReportMetric(tput, "words/s")
				})
			}
		}
	}
}

// BenchmarkExecutorNullOps measures the real executor's dispatch rate on
// chains of null operations (§5: the reference implementation dispatches
// approximately 2,000,000 null operations per second).
func BenchmarkExecutorNullOps(b *testing.B) {
	g := tf.NewGraph()
	const chains, depth = 32, 128
	var lasts []tf.Output
	for c := 0; c < chains; c++ {
		cur := g.Const(float32(c))
		for d := 0; d < depth; d++ {
			cur = g.Identity(cur)
		}
		lasts = append(lasts, cur)
	}
	final := g.AddN(lasts...)
	sess, err := tf.NewSession(g, tf.SessionOptions{DisableOptimizations: true})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sess.Fetch1(nil, final); err != nil {
		b.Fatal(err)
	}
	opsPerStep := float64(chains*(depth+1) + 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Fetch1(nil, final); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(opsPerStep*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mops/s")
}

// BenchmarkTrainingStep measures a realistic end-to-end training step
// (forward + backward + SGD update) of a small dense network on the real
// runtime.
func BenchmarkTrainingStep(b *testing.B) {
	g := tf.NewGraph()
	g.SetSeed(1)
	x := g.Placeholder("x", tf.Float32, tf.Shape{32, 64})
	y := g.Placeholder("y", tf.Int32, tf.Shape{32})
	logits, vars := nn.Classifier(g, "clf", x, []int{128, 64}, 10)
	loss := nn.CrossEntropyLoss(g, logits, y, 0, nil)
	opt := &train.GradientDescent{LearningRate: 0.01}
	trainOp, err := opt.Minimize(g, loss, vars)
	if err != nil {
		b.Fatal(err)
	}
	sess, err := tf.NewSession(g)
	if err != nil {
		b.Fatal(err)
	}
	if err := sess.RunTargets(g.InitOp()); err != nil {
		b.Fatal(err)
	}
	xs := tf.NewRNG(1).Uniform(tf.Float32, tf.Shape{32, 64}, -1, 1)
	ys := tf.NewRNG(2).UniformInt(tf.Int32, tf.Shape{32}, 10)
	feeds := map[tf.Output]*tf.Tensor{x: xs, y: ys}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Run(feeds, nil, trainOp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWhileTrainingStep measures an end-to-end training step through
// control flow (§4.1, §3.4): an 8-iteration tf.While recurrence
// s ← tanh(s·W) with a squared-error loss and an SGD update. The step runs
// the forward loop (with stack pushes saving intermediates), the backward
// loop (stack pops, invariant accumulation) and the variable write — the
// workload class the frame-aware executor path and its pooled per-frame
// state exist for.
func BenchmarkWhileTrainingStep(b *testing.B) {
	g := tf.NewGraph()
	g.SetSeed(1)
	x := g.Placeholder("x", tf.Float32, tf.Shape{8, 16})
	w := g.NewVariableFromTensor("w", tf.NewRNG(3).Uniform(tf.Float32, tf.Shape{16, 16}, -0.3, 0.3))
	wVal := w.Value()
	outs := g.While(
		[]tf.Output{g.Const(int32(0)), x}, nil,
		func(vars, _ []tf.Output) tf.Output { return g.Less(vars[0], g.Const(int32(8))) },
		func(vars, _ []tf.Output) []tf.Output {
			return []tf.Output{
				g.Add(vars[0], g.Const(int32(1))),
				g.Tanh(g.MatMul(vars[1], wVal)),
			}
		},
	)
	loss := g.Mean(g.Square(outs[1]), nil, false)
	opt := &train.GradientDescent{LearningRate: 0.05}
	trainOp, err := opt.Minimize(g, loss, []*tf.Variable{w})
	if err != nil {
		b.Fatal(err)
	}
	sess, err := tf.NewSession(g)
	if err != nil {
		b.Fatal(err)
	}
	if err := sess.RunTargets(g.InitOp()); err != nil {
		b.Fatal(err)
	}
	xs := tf.NewRNG(1).Uniform(tf.Float32, tf.Shape{8, 16}, -1, 1)
	feeds := map[tf.Output]*tf.Tensor{x: xs}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Run(feeds, nil, trainOp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistributedStep measures a cross-task step on the real
// in-process cluster: parameters on a PS task, compute on a worker,
// Send/Recv through the rendezvous.
func BenchmarkDistributedStep(b *testing.B) {
	spec := distributed.ClusterSpec{"ps": {""}, "worker": {""}}
	cluster := distributed.NewInProcCluster(spec)
	g := graph.New()
	v, _ := g.AddNode("Variable", nil, graph.NodeArgs{
		Name:   "w",
		Attrs:  map[string]any{"dtype": tensor.Float32, "shape": tensor.Shape{256, 256}},
		Device: "/job:ps/task:0",
	})
	c, _ := g.AddNode("Const", nil, graph.NodeArgs{
		Name: "init", Attrs: map[string]any{"value": tensor.New(tensor.Float32, tensor.Shape{256, 256})},
	})
	asg, _ := g.AddNode("Assign", []graph.Endpoint{v.Out(0), c.Out(0)}, graph.NodeArgs{Name: "assign"})
	read, _ := g.AddNode("Read", []graph.Endpoint{v.Out(0)}, graph.NodeArgs{Name: "read"})
	sum, _ := g.AddNode("Sum", []graph.Endpoint{read.Out(0)}, graph.NodeArgs{
		Name: "sum", Device: "/job:worker/task:0",
	})
	m, err := distributed.NewMaster(g, spec, cluster.Resolver(), distributed.MasterOptions{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Run(nil, nil, []*graph.Node{asg}); err != nil {
		b.Fatal(err)
	}
	fetch := []graph.Endpoint{sum.Out(0)}
	if _, err := m.Run(nil, fetch, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(nil, fetch, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplicatedTrainingStep measures one asynchronous data-parallel
// training step through tf/train's replication layer (§4.4, Figure 4a):
// parameters sharded over two PS tasks, gradients computed on a worker
// replica, optimizer update applied on the shards, global step bumped —
// all over the real in-process cluster runtime.
func BenchmarkReplicatedTrainingStep(b *testing.B) {
	spec := distributed.ClusterSpec{"ps": {"", ""}, "worker": {""}}
	cluster := distributed.NewInProcCluster(spec)
	const (
		features = 32
		batch    = 16
	)
	r, err := train.NewReplicated(train.ReplicatedOptions{
		Cluster: spec, Resolver: cluster.Resolver(),
		Optimizer: &train.GradientDescent{LearningRate: 0.01},
	}, func(rb *train.ReplicaGraph) (*train.Model, error) {
		x := rb.Placeholder("x", tf.Float32, tf.Shape{batch, features})
		y := rb.Placeholder("y", tf.Float32, tf.Shape{batch, 1})
		w := rb.Variable("w", tf.NewTensor(tf.Float32, tf.Shape{features, 1}))
		bias := rb.Variable("b", tf.NewTensor(tf.Float32, tf.Shape{1}))
		pred := rb.Add(rb.MatMul(x, w.Value()), bias.Value())
		loss := rb.Mean(rb.Square(rb.Sub(pred, y)), nil, false)
		return &train.Model{Loss: loss, Inputs: map[string]tf.Output{"x": x, "y": y}}, nil
	})
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Init(); err != nil {
		b.Fatal(err)
	}
	wTrue := make([]float32, features)
	for i := range wTrue {
		wTrue[i] = float32(i%5) - 2
	}
	xs, ys := nn.LinearData(1, batch, features, wTrue, 0.5, 0.01)
	feeds := map[string]*tf.Tensor{"x": xs, "y": ys}
	if _, err := r.TrainStep(0, feeds); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.TrainStep(0, feeds); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablations (ARCHITECTURE.md) --------------------------------------------

// BenchmarkAblationSubgraphCache quantifies the master's subgraph cache
// (§3.3/§5): step latency with the cached executable vs re-pruning and
// re-compiling the step definition every time.
func BenchmarkAblationSubgraphCache(b *testing.B) {
	build := func() (*tf.Graph, tf.Output) {
		g := tf.NewGraph()
		cur := g.Const(float32(1))
		for i := 0; i < 200; i++ {
			cur = g.Identity(cur)
		}
		return g, cur
	}
	b.Run("cached", func(b *testing.B) {
		g, out := build()
		sess, err := tf.NewSession(g)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Fetch1(nil, out); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sess.Fetch1(nil, out); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recompile-per-step", func(b *testing.B) {
		g, out := build()
		core := func() error {
			// A fresh session compiles the subgraph anew (no cache).
			sess, err := tf.NewSession(g, tf.SessionOptions{DisableOptimizations: true})
			if err != nil {
				return err
			}
			_, err = sess.Fetch1(nil, out)
			return err
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := core(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSparseVsDense quantifies the sparse-update design of
// §4.2: a training step on a large embedding using sparse ScatterSub of
// only the gathered rows vs densifying the gradient and assigning the full
// matrix.
func BenchmarkAblationSparseVsDense(b *testing.B) {
	const vocab, dim, batchRows = 50000, 64, 32
	build := func(sparse bool) (*tf.Session, *tf.Operation, error) {
		g := tf.NewGraph()
		g.SetSeed(1)
		emb := g.NewVariable("emb", g.RandomNormal(tf.Float32, tf.Shape{vocab, dim}, 0, 0.1))
		ids := g.RandomUniformInt(tf.Shape{batchRows}, vocab)
		rows := g.Gather(emb.Value(), ids)
		loss := g.Sum(g.Square(rows), nil, false)
		grads, err := g.Gradients([]tf.Output{loss}, []tf.Output{emb.Value()})
		if err != nil {
			return nil, nil, err
		}
		var trainOp *tf.Operation
		if sparse {
			sp := grads[0].Sparse
			lr := g.Const(float32(0.01))
			trainOp = emb.ScatterSub(sp.Indices, g.Mul(sp.Values, lr))
		} else {
			dense, err := g.DensifyGradient(grads[0])
			if err != nil {
				return nil, nil, err
			}
			trainOp = emb.AssignSub(g.Mul(dense, g.Const(float32(0.01))))
		}
		sess, err := tf.NewSession(g)
		if err != nil {
			return nil, nil, err
		}
		if err := sess.RunTargets(g.InitOp()); err != nil {
			return nil, nil, err
		}
		return sess, trainOp, nil
	}
	for _, sparse := range []bool{true, false} {
		name := "dense-update"
		if sparse {
			name = "sparse-scatter"
		}
		b.Run(name, func(b *testing.B) {
			sess, trainOp, err := build(sparse)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sess.RunTargets(trainOp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationExecutorControlFlowPath quantifies the executor's
// fast-path split: the same chain graph with and without a control-flow
// node, which forces the frame-aware (mutex-per-node) scheduling path.
func BenchmarkAblationExecutorControlFlowPath(b *testing.B) {
	build := func(withCtrlFlow bool) (*tf.Session, tf.Output, error) {
		g := tf.NewGraph()
		cur := g.Const(float32(1))
		if withCtrlFlow {
			pred := g.Const(true)
			outs := g.Cond(pred, []tf.Output{cur},
				func(ins []tf.Output) []tf.Output { return ins },
				func(ins []tf.Output) []tf.Output { return []tf.Output{g.Neg(ins[0])} })
			cur = outs[0]
		}
		for i := 0; i < 512; i++ {
			cur = g.Identity(cur)
		}
		sess, err := tf.NewSession(g, tf.SessionOptions{DisableOptimizations: true})
		if err != nil {
			return nil, tf.Output{}, err
		}
		if _, err := sess.Fetch1(nil, cur); err != nil {
			return nil, tf.Output{}, err
		}
		return sess, cur, nil
	}
	for _, ctrl := range []bool{false, true} {
		name := "fast-path"
		if ctrl {
			name = "frame-aware-path"
		}
		b.Run(name, func(b *testing.B) {
			sess, out, err := build(ctrl)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Fetch1(nil, out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationFusedKernels quantifies the kernel-fusion pass on the
// same end-to-end training step as BenchmarkTrainingStep: one session with
// the full pipeline, one with the fusion pass disabled (folding and CSE
// stay on, so the delta is fusion alone). The backward graph consumes the
// chain interiors, so fusion contracts each MatMul+BiasAdd pair into one
// FusedMatMul dispatch with no intermediate product tensor.
func BenchmarkAblationFusedKernels(b *testing.B) {
	build := func(disableFusion bool) (*tf.Session, map[tf.Output]*tf.Tensor, *tf.Operation, error) {
		g := tf.NewGraph()
		g.SetSeed(1)
		x := g.Placeholder("x", tf.Float32, tf.Shape{32, 64})
		y := g.Placeholder("y", tf.Int32, tf.Shape{32})
		logits, vars := nn.Classifier(g, "clf", x, []int{128, 64}, 10)
		loss := nn.CrossEntropyLoss(g, logits, y, 0, nil)
		opt := &train.GradientDescent{LearningRate: 0.01}
		trainOp, err := opt.Minimize(g, loss, vars)
		if err != nil {
			return nil, nil, nil, err
		}
		sess, err := tf.NewSession(g, tf.SessionOptions{DisableFusion: disableFusion})
		if err != nil {
			return nil, nil, nil, err
		}
		if err := sess.RunTargets(g.InitOp()); err != nil {
			return nil, nil, nil, err
		}
		feeds := map[tf.Output]*tf.Tensor{
			x: tf.NewRNG(1).Uniform(tf.Float32, tf.Shape{32, 64}, -1, 1),
			y: tf.NewRNG(2).UniformInt(tf.Int32, tf.Shape{32}, 10),
		}
		return sess, feeds, trainOp, nil
	}
	for _, disable := range []bool{false, true} {
		name := "fused"
		if disable {
			name = "unfused"
		}
		b.Run(name, func(b *testing.B) {
			sess, feeds, trainOp, err := build(disable)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sess.Run(feeds, nil, trainOp); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Run(feeds, nil, trainOp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMatMulGFLOPS measures the packed, cache-blocked matrix-multiply
// kernel across sizes and both float widths (the headline kernel number the
// ROADMAP tracks; BenchmarkMatMul keeps the original two float32 sizes for
// snapshot continuity).
func BenchmarkMatMulGFLOPS(b *testing.B) {
	for _, dt := range []tensor.DType{tensor.Float32, tensor.Float64} {
		for _, n := range []int{64, 256, 512} {
			b.Run(fmt.Sprintf("%s/%dx%d", dt, n, n), func(b *testing.B) {
				x := tensor.NewRNG(1).Uniform(dt, tensor.Shape{n, n}, -1, 1)
				y := tensor.NewRNG(2).Uniform(dt, tensor.Shape{n, n}, -1, 1)
				b.SetBytes(int64(3 * dt.Size() * n * n))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := tensor.MatMul(x, y, false, false); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(2*float64(n)*float64(n)*float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
			})
		}
	}
}

// BenchmarkMatMul measures the float32 matrix-multiply kernel underneath
// every dense layer.
func BenchmarkMatMul(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			x := tensor.NewRNG(1).Uniform(tensor.Float32, tensor.Shape{n, n}, -1, 1)
			y := tensor.NewRNG(2).Uniform(tensor.Float32, tensor.Shape{n, n}, -1, 1)
			b.SetBytes(int64(8 * n * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tensor.MatMul(x, y, false, false); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(2*float64(n)*float64(n)*float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
		})
	}
}

// BenchmarkConv2D measures the convolution kernel (§3.1's canonical 4-D
// operation).
func BenchmarkConv2D(b *testing.B) {
	in := tensor.NewRNG(1).Uniform(tensor.Float32, tensor.Shape{8, 28, 28, 16}, -1, 1)
	filter := tensor.NewRNG(2).Uniform(tensor.Float32, tensor.Shape{3, 3, 16, 32}, -1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tensor.Conv2D(in, filter, 1, 1, tensor.PaddingSame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPSApplySyncStep is the PR 10 ablation: one synchronous round
// (m = 1, so no waiting on peers) through the legacy chief-apply path —
// gradients fetched to the chief, aggregated, and fed back into a PS-side
// apply graph — versus the shard-apply path, where the worker pushes its
// gradients to the owning PS shard and the update rule runs next to the
// variable. The sparse case pushes only the gathered embedding rows
// (indices + values) of a large table instead of a vocab-sized dense
// gradient.
func BenchmarkPSApplySyncStep(b *testing.B) {
	const (
		features = 32
		batch    = 16
		vocab    = 512
		dim      = 32
	)
	denseModel := func(rb *train.ReplicaGraph) (*train.Model, error) {
		x := rb.Placeholder("x", tf.Float32, tf.Shape{batch, features})
		y := rb.Placeholder("y", tf.Float32, tf.Shape{batch, 1})
		w := rb.Variable("w", tf.NewTensor(tf.Float32, tf.Shape{features, 1}))
		bias := rb.Variable("b", tf.NewTensor(tf.Float32, tf.Shape{1}))
		pred := rb.Add(rb.MatMul(x, w.Value()), bias.Value())
		loss := rb.Mean(rb.Square(rb.Sub(pred, y)), nil, false)
		return &train.Model{Loss: loss, Inputs: map[string]tf.Output{"x": x, "y": y}}, nil
	}
	embModel := func(rb *train.ReplicaGraph) (*train.Model, error) {
		idx := rb.Placeholder("idx", tf.Int32, tf.Shape{batch})
		init := tf.NewTensor(tf.Float32, tf.Shape{vocab, dim})
		for i := 0; i < init.NumElements(); i++ {
			init.SetFloat(i, float64(i%9)*0.1-0.4)
		}
		emb := rb.Variable("emb", init)
		rows := rb.Gather(emb.Value(), idx)
		loss := rb.Mean(rb.Square(rows), nil, false)
		return &train.Model{Loss: loss, Inputs: map[string]tf.Output{"idx": idx}}, nil
	}

	wTrue := make([]float32, features)
	for i := range wTrue {
		wTrue[i] = float32(i%5) - 2
	}
	xs, ys := nn.LinearData(1, batch, features, wTrue, 0.5, 0.01)
	denseFeeds := map[string]*tf.Tensor{"x": xs, "y": ys}
	idx := make([]int32, batch)
	for i := range idx {
		idx[i] = int32((i * 37) % vocab)
	}
	embFeeds := map[string]*tf.Tensor{"idx": tf.FromInt32s(tf.Shape{batch}, idx)}

	run := func(b *testing.B, opts train.ReplicatedOptions, model train.ModelFn, feeds map[string]*tf.Tensor) {
		spec := distributed.ClusterSpec{"ps": {"", ""}, "worker": {""}}
		cluster := distributed.NewInProcCluster(spec)
		opts.Cluster = spec
		opts.Resolver = cluster.Resolver()
		opts.Sync = true
		if opts.Optimizer == nil {
			opts.Optimizer = &train.GradientDescent{LearningRate: 0.01}
		}
		r, err := train.NewReplicated(opts, model)
		if err != nil {
			b.Fatal(err)
		}
		defer r.Close()
		if _, err := r.Init(); err != nil {
			b.Fatal(err)
		}
		if _, err := r.TrainStep(0, feeds); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.TrainStep(0, feeds); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("chief-apply", func(b *testing.B) {
		run(b, train.ReplicatedOptions{ChiefApply: true}, denseModel, denseFeeds)
	})
	b.Run("ps-apply", func(b *testing.B) {
		run(b, train.ReplicatedOptions{}, denseModel, denseFeeds)
	})
	b.Run("ps-apply-sparse", func(b *testing.B) {
		run(b, train.ReplicatedOptions{}, embModel, embFeeds)
	})
}
