package repro_test

// BenchmarkServePredict measures the inference tier end to end: a dense
// MLP is trained briefly, frozen with a relaxed batch dimension, exported,
// and reloaded through the serving loader; then 32 closed-loop clients
// drive single-row predicts through the model while the micro-batch
// latency window sweeps from 0 (batching off — every request is its own
// pooled-executor step) through 1/5/10 ms. Reported per setting: p50/p99
// request latency and aggregate throughput. At saturation the batcher's
// win is amortized per-step overhead, so batched qps should clear the
// unbatched baseline by well over 2x.

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serving"
	"repro/internal/tensor"
	"repro/tf"
	"repro/tf/nn"
)

const (
	serveClients  = 64
	serveMaxBatch = 64
	serveCols     = 16
	serveDepth    = 12
)

// frozenServeModel builds, freezes and exports the benchmark model, and
// loads it back through the serving path with the given batch window.
func frozenServeModel(b *testing.B, window time.Duration) *serving.Model {
	b.Helper()
	g := tf.NewGraph()
	g.SetSeed(11)
	// Deep and narrow: per-row FLOPs stay small while the step crosses
	// many nodes, so per-step scheduling overhead — the thing batching
	// amortizes — dominates, as it does for small production models.
	x := g.Placeholder("x", tf.Float32, tf.Shape{1, serveCols})
	h := x
	for i := 0; i < serveDepth; i++ {
		h, _ = nn.Dense(g, fmt.Sprintf("hidden%d", i), h, serveCols, nn.ReLU)
	}
	logits, _ := nn.Dense(g, "out", h, 8, nn.Linear)
	sess, err := tf.NewSession(g)
	if err != nil {
		b.Fatal(err)
	}
	defer sess.Close()
	if err := sess.RunTargets(g.InitOp()); err != nil {
		b.Fatal(err)
	}
	frozen, err := tf.Freeze(sess,
		[]tf.SigTensor{{Alias: "x", Output: x}},
		[]tf.SigTensor{{Alias: "logits", Output: logits}},
		tf.FreezeOptions{BatchDim: true})
	if err != nil {
		b.Fatal(err)
	}
	root := b.TempDir()
	if err := frozen.Export(root, "bench", 1); err != nil {
		b.Fatal(err)
	}
	m, err := serving.LoadModel(root, "bench", 1, serving.ModelOptions{
		MaxBatch: serveMaxBatch, Window: window,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Warm(); err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkServePredict(b *testing.B) {
	settings := []struct {
		name   string
		window time.Duration
	}{
		{"unbatched", 0},
		{"window=1ms", time.Millisecond},
		{"window=5ms", 5 * time.Millisecond},
		{"window=10ms", 10 * time.Millisecond},
	}
	for _, s := range settings {
		b.Run(s.name, func(b *testing.B) {
			m := frozenServeModel(b, s.window)
			defer m.Close()

			// Closed loop: every client keeps exactly one request in
			// flight, so offered load is saturation for this client count.
			// The round count gets a floor so the percentile math is
			// meaningful even under -benchtime 1x smoke runs.
			rounds := b.N
			if rounds < 100 {
				rounds = 100
			}
			total := int64(rounds) * serveClients

			row := tensor.New(tensor.Float32, tensor.Shape{1, serveCols})
			for i := range row.Float32s() {
				row.Float32s()[i] = float32(i) * 0.01
			}

			var next atomic.Int64
			latencies := make([][]time.Duration, serveClients)
			var wg sync.WaitGroup
			b.ResetTimer()
			start := time.Now()
			for c := 0; c < serveClients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					local := make([]time.Duration, 0, rounds)
					for next.Add(1) <= total {
						t0 := time.Now()
						if _, err := m.Predict([]*tensor.Tensor{row}); err != nil {
							b.Error(err)
							return
						}
						local = append(local, time.Since(t0))
					}
					latencies[c] = local
				}(c)
			}
			wg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()

			var all []time.Duration
			for _, l := range latencies {
				all = append(all, l...)
			}
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			pct := func(p float64) time.Duration {
				if len(all) == 0 {
					return 0
				}
				i := int(p * float64(len(all)-1))
				return all[i]
			}
			qps := float64(len(all)) / elapsed.Seconds()
			b.ReportMetric(qps, "qps")
			b.ReportMetric(float64(pct(0.50))/1e3, "p50-µs")
			b.ReportMetric(float64(pct(0.99))/1e3, "p99-µs")
			b.ReportMetric(0, "ns/op") // latency metrics above are the story
		})
	}
}
